"""The monitor service: one object tying ring, SLOs, and exemplars.

A :class:`Monitor` owns the pieces the rest of the package provides —
a :class:`~repro.telemetry.monitor.timeseries.TimeSeriesStore` ring, an
:class:`~repro.telemetry.monitor.slo.SLOEngine`, an
:class:`~repro.telemetry.monitor.exemplars.ExemplarStore` — and drives
them with one verb: :meth:`tick`.  Each tick snapshots the registry
into the ring, evaluates every SLO against the updated ring, rotates
the exemplar window, and optionally appends the sample as a JSON line.

Ticks can be driven two ways:

* **explicitly** — the cluster epoch loop calls ``monitor.tick(t=...)``
  once per simulated epoch, so monitoring shares the simulation's
  clock and stays deterministic;
* **on a thread** — ``monitor.start(interval_s=0.2)`` runs ticks on a
  daemon thread for a live ``repro serve`` process, and
  ``monitor.serve(port)`` adds the HTTP endpoints on top.

Everything is a flag-check no-op while telemetry is disabled: ``tick``
returns ``None`` without touching the ring, and the batch pipelines
never construct a Monitor in the first place.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, Iterable

from repro.telemetry.monitor import exemplars as _exemplars
from repro.telemetry.monitor.exemplars import ExemplarStore
from repro.telemetry.monitor.exporters import (
    sample_to_jsonl,
    serve_monitor_http,
)
from repro.telemetry.monitor.slo import SLOEngine, SLOSpec
from repro.telemetry.monitor.timeseries import (
    DEFAULT_CAPACITY,
    MetricSample,
    TimeSeriesStore,
)
from repro.telemetry.registry import MetricsRegistry, get_registry

__all__ = ["Monitor"]


class Monitor:
    """Continuous monitoring for a server process or epoch simulation."""

    def __init__(
        self,
        *,
        slos: Iterable[SLOSpec] = (),
        capacity: int = DEFAULT_CAPACITY,
        registry: MetricsRegistry | None = None,
        clock=None,
        exemplar_k: int = 4,
        jsonl: IO[str] | str | Path | None = None,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        kwargs = {"capacity": capacity, "registry": self.registry}
        if clock is not None:
            kwargs["clock"] = clock
        self.store = TimeSeriesStore(**kwargs)
        self.slo_engine = SLOEngine(slos, self.store)
        self.exemplars = ExemplarStore(k_per_kind=exemplar_k)
        self._jsonl: IO[str] | None = None
        self._owns_jsonl = False
        if jsonl is not None:
            if isinstance(jsonl, (str, Path)):
                self._jsonl = open(jsonl, "a", encoding="utf-8")
                self._owns_jsonl = True
            else:
                self._jsonl = jsonl
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._httpd = None
        _exemplars.activate(self.exemplars)

    # -- the tick ------------------------------------------------------------

    def tick(self, t: float | None = None) -> list[dict]:
        """One monitor pass: sample, evaluate, rotate, export.

        Returns the SLO transitions this tick caused (empty while
        telemetry is disabled — the whole tick is then a no-op).
        """
        sample = self.store.sample(t)
        if sample is None:
            return []
        transitions = self.slo_engine.evaluate(now=sample.t)
        self.exemplars.rotate(sample.t)
        if self._jsonl is not None:
            self._jsonl.write(sample_to_jsonl(sample) + "\n")
            self._jsonl.flush()
        return transitions

    # -- background operation ------------------------------------------------

    def start(self, interval_s: float = 0.2) -> None:
        """Tick on a daemon thread every ``interval_s`` until stopped."""
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(interval_s):
                self.tick()

        self._thread = threading.Thread(
            target=_loop, name="repro-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background tick thread (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def serve(self, port: int, *, host: str = "127.0.0.1") -> int:
        """Expose /metrics, /monitor.json, /healthz; returns the bound
        port (useful with ``port=0``)."""
        if self._httpd is not None:
            raise RuntimeError("monitor HTTP endpoints already serving")
        self._httpd = serve_monitor_http(self, port, host=host)
        return self._httpd.server_port

    @property
    def port(self) -> int | None:
        """The HTTP port when serving, else ``None``."""
        return self._httpd.server_port if self._httpd else None

    def close(self) -> None:
        """Stop the thread, the HTTP server, and detach the exemplar
        hooks (idempotent; safe in ``finally``)."""
        self.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        _exemplars.deactivate(self.exemplars)
        if self._jsonl is not None and self._owns_jsonl:
            self._jsonl.close()
            self._jsonl = None

    def __enter__(self) -> "Monitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- views ---------------------------------------------------------------

    def registry_snapshot(self) -> dict:
        """The live registry snapshot (the /metrics data source)."""
        return self.registry.snapshot()

    def latest(self) -> MetricSample | None:
        return self.store.latest()

    def dump(self) -> dict:
        """The full monitor state: ring + alerts + exemplars."""
        return {
            "timeseries": self.store.dump(),
            "slo": self.slo_engine.dump(),
            "exemplars": self.exemplars.snapshot(),
        }

    def write_dump(self, path: str | Path) -> Path:
        """Write :meth:`dump` as JSON; returns the path."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(self.dump(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return out
