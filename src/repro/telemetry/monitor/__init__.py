"""Continuous monitoring over the telemetry registry.

The :mod:`repro.telemetry` registry (PR 3) is batch-shaped: counters
and histograms accumulate for a run and are rendered once at the end.
This package adds the *continuous* layer a long-lived decision server
or a fleet epoch loop needs:

- :mod:`~repro.telemetry.monitor.timeseries` — a bounded ring of
  registry snapshots with reset-aware rate / windowed-percentile views;
- :mod:`~repro.telemetry.monitor.slo` — declarative SLO specs with
  multi-window burn-rate alerting over the ring;
- :mod:`~repro.telemetry.monitor.exemplars` — bounded capture of the
  K slowest / shed / errored requests per window, with per-request
  phase traces;
- :mod:`~repro.telemetry.monitor.exporters` — Prometheus text
  exposition and JSON-lines export, served from a stdlib HTTP thread;
- :mod:`~repro.telemetry.monitor.service` — the :class:`Monitor`
  object tying them together with a single ``tick``;
- :mod:`~repro.telemetry.monitor.top` — the ``repro top`` ops view
  rendered from a monitor dump.

Everything honours the process-wide telemetry switch: with
``REPRO_TELEMETRY=0`` every collection path is a flag-check no-op and
the batch pipelines' golden digests are untouched.
"""

from repro.telemetry.monitor.exemplars import (
    ExemplarStore,
    RequestExemplar,
    record_error,
    record_shed,
    record_slow,
)
from repro.telemetry.monitor.exporters import (
    render_prometheus,
    sample_to_jsonl,
    serve_monitor_http,
)
from repro.telemetry.monitor.service import Monitor
from repro.telemetry.monitor.slo import (
    Alert,
    SLOEngine,
    SLOSpec,
    default_cluster_slos,
    default_fault_slos,
    default_server_slos,
    load_slo_specs,
    parse_slo,
)
from repro.telemetry.monitor.timeseries import (
    DEFAULT_CAPACITY,
    MetricSample,
    TimeSeriesStore,
    WindowDelta,
)
from repro.telemetry.monitor.top import fetch_monitor_dump, render_top

__all__ = [
    "Alert",
    "DEFAULT_CAPACITY",
    "ExemplarStore",
    "MetricSample",
    "Monitor",
    "RequestExemplar",
    "SLOEngine",
    "SLOSpec",
    "TimeSeriesStore",
    "WindowDelta",
    "default_cluster_slos",
    "default_fault_slos",
    "default_server_slos",
    "fetch_monitor_dump",
    "load_slo_specs",
    "parse_slo",
    "record_error",
    "record_shed",
    "record_slow",
    "render_prometheus",
    "render_top",
    "sample_to_jsonl",
    "serve_monitor_http",
]
