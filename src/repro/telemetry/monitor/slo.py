"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOSpec` is one service-level objective stated over the
metric registry — ``"server.latency_s p99 < 0.005"``,
``"harness.cap_violations.Model rate == 0"``,
``"faults.failed_invocations rate < 2"`` — evaluated against the
monitor's ring buffer (:class:`~repro.telemetry.monitor.timeseries.
TimeSeriesStore`), never against raw instruments, so an SLO judges a
*window* of behaviour rather than process-lifetime totals.

Alerting follows the multi-window burn-rate pattern: a spec **fires**
only when both its short and long windows violate the objective (the
short window gives fast detection, the long window suppresses
one-sample blips), and **clears** as soon as the short window complies
again (fast recovery, no long tail of stale alerts).  Windows with too
few samples abstain — an alert never changes state on missing data.

Every evaluation bumps ``slo.evaluations``; each transition bumps
``alerts.fired.<name>`` / ``alerts.cleared.<name>`` and the engine
keeps ``alerts.active`` (gauge) plus a bounded transition history so a
dump shows *when* each alert fired and cleared on the ring's clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.telemetry.monitor.timeseries import TimeSeriesStore
from repro.telemetry.registry import counter, gauge
from repro.telemetry.spans import trace_span

__all__ = [
    "Alert",
    "SLOEngine",
    "SLOSpec",
    "default_cluster_slos",
    "default_fault_slos",
    "default_server_slos",
    "load_slo_specs",
    "parse_slo",
]

#: Signals an SLO may watch.
_SIGNALS = ("rate", "value", "mean", "p50", "p90", "p99")
_OPS = ("<", "<=", ">", ">=", "==")

_EVALUATIONS = counter("slo.evaluations")
_ACTIVE = gauge("alerts.active")

STATE_OK = "ok"
STATE_FIRING = "firing"


@dataclass(frozen=True)
class SLOSpec:
    """One objective: ``<metric> <signal> <op> <threshold>``.

    ``signal`` selects the ring-buffer view: ``rate`` (counter
    increase/s), ``value`` (gauge at the newest sample), ``mean`` /
    ``p50`` / ``p90`` / ``p99`` (histogram window statistics).  The
    objective *complies* when ``signal(window) op threshold`` holds.
    """

    name: str
    metric: str
    signal: str
    op: str
    threshold: float
    short_window_s: float = 5.0
    long_window_s: float = 60.0

    def __post_init__(self) -> None:
        if self.signal not in _SIGNALS:
            raise ValueError(
                f"unknown SLO signal {self.signal!r} (expected {_SIGNALS})"
            )
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO op {self.op!r} (expected {_OPS})")
        if not (0 < self.short_window_s <= self.long_window_s):
            raise ValueError(
                "windows must satisfy 0 < short_window_s <= long_window_s"
            )

    @property
    def expr(self) -> str:
        """The spec as its parseable one-line form."""
        return f"{self.metric} {self.signal} {self.op} {self.threshold:g}"

    def measure(
        self, store: TimeSeriesStore, window_s: float
    ) -> float | None:
        """The watched signal over one window (``None`` = abstain)."""
        if self.signal == "rate":
            return store.counter_rate(self.metric, window_s)
        if self.signal == "value":
            return store.gauge_value(self.metric)
        if self.signal == "mean":
            delta = store.histogram_window(self.metric, window_s)
            return delta.mean if delta and delta.count else None
        return store.percentile(
            self.metric, float(self.signal[1:]), window_s
        )

    def complies(self, value: float) -> bool:
        """Whether a measured value meets the objective."""
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        if self.op == ">=":
            return value >= self.threshold
        return value == self.threshold

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "expr": self.expr,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
        }


def parse_slo(
    expr: str,
    *,
    name: str | None = None,
    short_window_s: float = 5.0,
    long_window_s: float = 60.0,
) -> SLOSpec:
    """Parse ``"metric [signal] op threshold"`` into an :class:`SLOSpec`.

    The signal defaults to ``value`` (a gauge objective) when omitted::

        parse_slo("server.latency_s p99 < 0.005")
        parse_slo("server.shed rate == 0")
        parse_slo("server.queue_depth < 512")
    """
    parts = expr.split()
    if len(parts) == 3:
        metric, signal, op, threshold = parts[0], "value", parts[1], parts[2]
    elif len(parts) == 4:
        metric, signal, op, threshold = parts
    else:
        raise ValueError(
            f"bad SLO expression {expr!r} "
            "(expected 'metric [signal] op threshold')"
        )
    try:
        value = float(threshold)
    except ValueError:
        raise ValueError(
            f"bad SLO threshold {threshold!r} in {expr!r}"
        ) from None
    return SLOSpec(
        name=name if name is not None else metric.replace(".", "-"),
        metric=metric,
        signal=signal,
        op=op,
        threshold=value,
        short_window_s=short_window_s,
        long_window_s=long_window_s,
    )


def load_slo_specs(path: str | Path) -> list[SLOSpec]:
    """Load SLO specs from a JSON file: a list of objects with ``expr``
    and optional ``name`` / ``short_window_s`` / ``long_window_s``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError(f"{path}: SLO file must hold a JSON list")
    specs = []
    for item in data:
        specs.append(
            parse_slo(
                item["expr"],
                name=item.get("name"),
                short_window_s=float(item.get("short_window_s", 5.0)),
                long_window_s=float(item.get("long_window_s", 60.0)),
            )
        )
    return specs


class Alert:
    """Mutable alert state for one spec."""

    __slots__ = (
        "spec", "state", "since_t", "fired", "cleared", "short", "long"
    )

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        self.state = STATE_OK
        self.since_t: float | None = None
        self.fired = 0
        self.cleared = 0
        self.short: float | None = None
        self.long: float | None = None

    def to_dict(self) -> dict:
        return {
            "slo": self.spec.to_dict(),
            "state": self.state,
            "since_t": self.since_t,
            "fired": self.fired,
            "cleared": self.cleared,
            "short": self.short,
            "long": self.long,
        }


class SLOEngine:
    """Evaluates SLO specs over a ring buffer and tracks alert state."""

    #: Bounded transition history length.
    MAX_HISTORY = 256

    def __init__(
        self, specs: Iterable[SLOSpec], store: TimeSeriesStore
    ) -> None:
        self._store = store
        self._alerts = [Alert(spec) for spec in specs]
        names = [a.spec.name for a in self._alerts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self._fired_counters = {
            a.spec.name: counter(f"alerts.fired.{a.spec.name}")
            for a in self._alerts
        }
        self._cleared_counters = {
            a.spec.name: counter(f"alerts.cleared.{a.spec.name}")
            for a in self._alerts
        }
        self.history: list[dict] = []

    @property
    def alerts(self) -> Sequence[Alert]:
        return tuple(self._alerts)

    @property
    def active(self) -> int:
        """How many alerts are currently firing."""
        return sum(1 for a in self._alerts if a.state == STATE_FIRING)

    def evaluate(self, now: float | None = None) -> list[dict]:
        """One evaluation pass; returns the transitions it caused.

        Fire: short **and** long windows violate.  Clear: short window
        complies.  Either window abstaining (too few samples) leaves
        the alert's state untouched.
        """
        transitions: list[dict] = []
        with trace_span("monitor/slo"):
            _EVALUATIONS.inc()
            last = self._store.latest()
            t = last.t if now is None and last is not None else now
            for alert in self._alerts:
                spec = alert.spec
                short = spec.measure(self._store, spec.short_window_s)
                long = spec.measure(self._store, spec.long_window_s)
                alert.short, alert.long = short, long
                if alert.state == STATE_OK:
                    if (
                        short is not None
                        and long is not None
                        and not spec.complies(short)
                        and not spec.complies(long)
                    ):
                        alert.state = STATE_FIRING
                        alert.since_t = t
                        alert.fired += 1
                        self._fired_counters[spec.name].inc()
                        transitions.append(
                            self._event(spec, "fired", t, short, long)
                        )
                else:
                    if short is not None and spec.complies(short):
                        alert.state = STATE_OK
                        alert.since_t = t
                        alert.cleared += 1
                        self._cleared_counters[spec.name].inc()
                        transitions.append(
                            self._event(spec, "cleared", t, short, long)
                        )
            _ACTIVE.set(float(self.active))
            if transitions:
                self.history.extend(transitions)
                del self.history[: -self.MAX_HISTORY]
        return transitions

    @staticmethod
    def _event(
        spec: SLOSpec,
        event: str,
        t: float | None,
        short: float | None,
        long: float | None,
    ) -> dict:
        return {
            "slo": spec.name,
            "event": event,
            "t": t,
            "short": short,
            "long": long,
        }

    def dump(self) -> dict:
        """Deterministic dict view: per-alert state + transition log."""
        return {
            "alerts": [a.to_dict() for a in self._alerts],
            "history": list(self.history),
        }


def default_fault_slos(
    *, short_window_s: float = 1.0, long_window_s: float = 5.0
) -> list[SLOSpec]:
    """Zero-tolerance burn-rate specs over every graceful-degradation
    counter (:data:`repro.faults.DEGRADATION_COUNTER_NAMES`)."""
    from repro.faults import DEGRADATION_COUNTER_NAMES

    return [
        parse_slo(
            f"{name} rate == 0",
            name=name.replace(".", "-"),
            short_window_s=short_window_s,
            long_window_s=long_window_s,
        )
        for name in DEGRADATION_COUNTER_NAMES
    ]


def default_server_slos(
    *,
    latency_p99_s: float = 0.005,
    short_window_s: float = 1.0,
    long_window_s: float = 5.0,
) -> list[SLOSpec]:
    """The decision server's default objectives: p99 latency under
    5 ms, no sheds, no per-request errors, no degradation episodes."""
    specs = [
        parse_slo(
            f"server.latency_s p99 < {latency_p99_s}",
            name="server-latency-p99",
            short_window_s=short_window_s,
            long_window_s=long_window_s,
        ),
        parse_slo(
            "server.shed rate == 0",
            name="server-shed",
            short_window_s=short_window_s,
            long_window_s=long_window_s,
        ),
        parse_slo(
            "server.errors rate == 0",
            name="server-errors",
            short_window_s=short_window_s,
            long_window_s=long_window_s,
        ),
    ]
    specs.extend(
        default_fault_slos(
            short_window_s=short_window_s, long_window_s=long_window_s
        )
    )
    return specs


def default_cluster_slos(
    *, short_window_s: float = 2.0, long_window_s: float = 10.0
) -> list[SLOSpec]:
    """The fleet manager's default objectives: epochs stay within
    budget and no epoch runs degraded by node faults."""
    return [
        parse_slo(
            "cluster.epoch.over_budget_w <= 0",
            name="cluster-over-budget",
            short_window_s=short_window_s,
            long_window_s=long_window_s,
        ),
        parse_slo(
            "faults.cluster.epochs_degraded rate == 0",
            name="cluster-epochs-degraded",
            short_window_s=short_window_s,
            long_window_s=long_window_s,
        ),
    ]
