"""``repro top``: a live ops view rendered from the monitor ring.

One frame is plain text — counters with windowed rates, gauges, the
server latency histogram's windowed percentiles, alert states, and the
latest exemplars — rendered entirely from a monitor *dump*, never from
live instruments.  That makes the same renderer work in both modes:

* **scrape mode** — poll a running ``repro serve --monitor-port``
  process's ``/monitor.json`` endpoint over HTTP and redraw;
* **simulation mode** — run a cluster epoch loop in-process with a
  per-epoch monitor tick and render the final state.

Rendering is pure string building over :class:`TimeSeriesStore.
from_dump` reconstruction, so tests can pin frames byte-for-byte.
"""

from __future__ import annotations

import json
import urllib.request
from typing import Mapping

from repro.telemetry.monitor.timeseries import TimeSeriesStore

__all__ = ["fetch_monitor_dump", "render_top"]

#: Metrics whose windowed rate leads the counters panel when present.
_HEADLINE_COUNTERS = (
    "server.requests",
    "server.batches",
    "server.shed",
    "server.errors",
    "cluster.epochs",
)

_LATENCY_HISTOGRAM = "server.latency_s"


def fetch_monitor_dump(url: str, *, timeout_s: float = 5.0) -> dict:
    """GET a monitor dump from a running server's ``/monitor.json``.

    ``url`` may be a bare ``host:port``; the scheme and path are filled
    in.  Only http(s) targets are accepted.
    """
    if "://" not in url:
        url = f"http://{url}"
    if not url.startswith(("http://", "https://")):
        raise ValueError(f"unsupported monitor URL {url!r}")
    if not url.endswith("/monitor.json"):
        url = url.rstrip("/") + "/monitor.json"
    with urllib.request.urlopen(url, timeout=timeout_s) as resp:  # noqa: S310
        return json.loads(resp.read().decode("utf-8"))


def _fmt_rate(value: float | None) -> str:
    return "    --" if value is None else f"{value:10.1f}/s"


def _fmt_num(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def render_top(dump: Mapping, *, window_s: float = 5.0) -> str:
    """One ops-view frame from a monitor dump (deterministic text)."""
    store = TimeSeriesStore.from_dump(dump.get("timeseries", {}))
    last = store.latest()
    lines: list[str] = []
    span = store.samples()
    header = (
        f"repro monitor — {len(span)} samples"
        f" — window {window_s:g}s"
    )
    if last is not None:
        header += f" — t={last.t:.2f}"
    lines.append(header)
    lines.append("=" * len(header))

    # -- counters: cumulative total + windowed rate --------------------------
    if last is not None and last.counters:
        lines.append("")
        lines.append("counters" + " " * 28 + "total        rate")
        headline = [n for n in _HEADLINE_COUNTERS if n in last.counters]
        rest = [n for n in sorted(last.counters) if n not in headline]
        for name in headline + rest:
            rate = store.counter_rate(name, window_s)
            lines.append(
                f"  {name:<32}{last.counters[name]:>9}  {_fmt_rate(rate)}"
            )

    # -- gauges --------------------------------------------------------------
    if last is not None and last.gauges:
        lines.append("")
        lines.append("gauges")
        for name in sorted(last.gauges):
            lines.append(
                f"  {name:<32}{_fmt_num(last.gauges[name]):>9}"
            )

    # -- latency percentiles over the window ---------------------------------
    if last is not None and last.histograms:
        lines.append("")
        lines.append("histograms (windowed)        count      p50      p90      p99")
        for name in sorted(last.histograms):
            delta = store.histogram_window(name, window_s)
            if delta is None or delta.count == 0:
                lines.append(f"  {name:<26}     --")
                continue
            ps = [
                store.percentile(name, q, window_s) for q in (50, 90, 99)
            ]
            cells = "  ".join(
                f"{p:7.4g}" if p is not None else "     --" for p in ps
            )
            lines.append(f"  {name:<26}{delta.count:>7}  {cells}")

    # -- alerts --------------------------------------------------------------
    alerts = dump.get("slo", {}).get("alerts", [])
    if alerts:
        lines.append("")
        lines.append("alerts")
        for alert in alerts:
            spec = alert.get("slo", {})
            state = alert.get("state", "?")
            marker = "!!" if state == "firing" else "ok"
            short = alert.get("short")
            shown = "--" if short is None else f"{short:.4g}"
            lines.append(
                f"  [{marker}] {spec.get('name', '?'):<28}"
                f" {spec.get('expr', '')}  (short={shown},"
                f" fired={alert.get('fired', 0)},"
                f" cleared={alert.get('cleared', 0)})"
            )

    # -- exemplars -----------------------------------------------------------
    ex = dump.get("exemplars", {})
    windows = list(ex.get("windows", ()))
    current = ex.get("current")
    if current and any(current.get(k) for k in ("slow", "shed", "error")):
        windows.append(current)
    recent: list[dict] = []
    for window in reversed(windows):
        for kind in ("error", "shed", "slow"):
            recent.extend(window.get(kind, ()))
        if len(recent) >= 5:
            break
    if recent:
        lines.append("")
        lines.append("exemplars (most recent window first)")
        for e in recent[:5]:
            desc = (
                f"  [{e.get('kind', '?'):>5}] {e.get('kernel_uid', '?')}"
                f" @ {e.get('power_cap_w', 0):g}W"
            )
            if e.get("latency_s"):
                desc += f"  {e['latency_s'] * 1e3:.3f}ms"
            if e.get("batch_size"):
                desc += f"  batch={e['batch_size']}"
            if e.get("error"):
                desc += f"  error={e['error']}"
            trace = e.get("trace")
            if trace and trace.get("phases"):
                phases = ", ".join(
                    f"{p['name']}={p['duration_s'] * 1e3:.3f}ms"
                    for p in trace["phases"]
                )
                desc += f"  [{phases}]"
            lines.append(desc)

    return "\n".join(lines) + "\n"
