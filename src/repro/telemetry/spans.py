"""Span-based tracing: a hierarchical timing tree of the pipeline.

``with trace_span("offline/cluster"):`` times a pipeline phase and
attaches it under the innermost open span of the current thread,
producing one aggregated tree for the whole offline -> online flow::

    loocv                          1x   12.41s
      offline/characterize         1x    8.02s
      fold                        16x    4.31s
        offline/dissimilarity     16x    0.08s
        offline/train             16x    3.12s
          offline/cluster         16x    1.95s
          ...

Repeated spans with the same name under the same parent *aggregate*
(count + total seconds) instead of appending — 16 cross-validation
folds produce one ``fold`` node with ``count=16``, keeping the tree
bounded and its snapshot deterministic in shape.

Concurrency: each thread keeps its own open-span stack.  A span opened
on a thread with an empty stack attaches to the tracer's *fallback*
parent when one is set (:meth:`Tracer.set_fallback`) — this is how
parallel cross-validation folds running inside a ``ThreadPoolExecutor``
land under the driving ``loocv`` span — and becomes a root of the
tracer's forest otherwise.  Node mutation is lock-protected.

When telemetry is disabled (:func:`repro.telemetry.set_enabled`),
:func:`trace_span` returns a shared no-op context manager: one flag
check, no timing, no allocation.
"""

from __future__ import annotations

import threading
import time

from repro.telemetry.registry import _STATE

__all__ = [
    "PhaseTrace",
    "SpanNode",
    "Tracer",
    "get_tracer",
    "trace_span",
]


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "count", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def to_dict(self) -> dict:
        """Deterministic dict view (children sorted by name)."""
        out: dict = {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
        }
        if self.children:
            out["children"] = [
                self.children[k].to_dict() for k in sorted(self.children)
            ]
        return out

    def child(self, name: str) -> "SpanNode":
        """The aggregated child named ``name`` (without locking — the
        tracer serializes mutation)."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SpanNode {self.name} {self.count}x {self.total_s:.3f}s>"


class PhaseTrace:
    """A bounded, *non-aggregated* per-request trace (exemplar path).

    :class:`SpanNode` aggregates by design — sixteen folds become one
    node — which is exactly wrong for explaining a single p99 outlier.
    A ``PhaseTrace`` is the complementary capture path: an ordered,
    bounded list of ``(name, start_s, duration_s)`` phases for *one*
    request, with offsets relative to the request's own origin.  The
    monitor's exemplar store (:mod:`repro.telemetry.monitor.exemplars`)
    attaches one to each sampled slow/shed/error request so the trace
    rides along in ``monitor.json`` dumps and HTTP exports.

    Phases past ``max_phases`` are dropped and counted in ``truncated``
    so a runaway producer cannot grow an exemplar without bound.
    """

    __slots__ = ("phases", "max_phases", "truncated")

    def __init__(self, max_phases: int = 16) -> None:
        self.phases: list[tuple[str, float, float]] = []
        self.max_phases = max_phases
        self.truncated = 0

    def add(self, name: str, start_s: float, duration_s: float) -> None:
        """Append one timed phase (dropped once ``max_phases`` is hit)."""
        if len(self.phases) >= self.max_phases:
            self.truncated += 1
            return
        self.phases.append((name, float(start_s), float(duration_s)))

    def to_dict(self) -> dict:
        """Deterministic dict view (phases in capture order)."""
        out: dict = {
            "phases": [
                {"name": n, "start_s": s, "duration_s": d}
                for n, s, d in self.phases
            ]
        }
        if self.truncated:
            out["truncated"] = self.truncated
        return out

    def __len__(self) -> int:
        return len(self.phases)


class _NoopSpan:
    """Shared do-nothing context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """A live span: times its block and folds it into the tree."""

    __slots__ = ("_tracer", "_name", "_node", "_t0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._node: SpanNode | None = None
        self._t0 = 0.0

    def __enter__(self) -> SpanNode:
        tracer = self._tracer
        stack = tracer._stack()
        with tracer._lock:
            parent = (
                stack[-1]
                if stack
                else (tracer._fallback or tracer._root)
            )
            node = parent.child(self._name)
        stack.append(node)
        self._node = node
        self._t0 = time.perf_counter()
        return node

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self._node:
            stack.pop()
        with tracer._lock:
            self._node.count += 1
            self._node.total_s += elapsed


class Tracer:
    """Collects spans into one process-wide aggregated tree."""

    def __init__(self) -> None:
        self._root = SpanNode("root")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._fallback: SpanNode | None = None

    def _stack(self) -> list[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str):
        """A context manager timing ``name`` under the current span."""
        if not _STATE.enabled:
            return _NOOP
        return _Span(self, name)

    def set_fallback(self, node: SpanNode | None) -> None:
        """Designate the parent for spans opened on threads with no open
        span (e.g. worker threads of a fold pool).  Pass ``None`` to
        clear; callers should clear in a ``finally``."""
        with self._lock:
            self._fallback = node

    def snapshot(self) -> list[dict]:
        """The root forest as a deterministic list of node dicts."""
        with self._lock:
            return [
                self._root.children[k].to_dict()
                for k in sorted(self._root.children)
            ]

    def reset(self) -> None:
        """Drop the collected tree (test isolation hook).  Open spans
        keep mutating their detached nodes harmlessly."""
        with self._lock:
            self._root = SpanNode("root")
            self._fallback = None
        self._local = threading.local()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def trace_span(name: str):
    """Time a block as a span of the process-wide tracer::

        with trace_span("offline/cluster"):
            ...

    Yields the aggregated :class:`SpanNode` (``None`` when telemetry is
    disabled); nested spans become its children.
    """
    if not _STATE.enabled:
        return _NOOP
    return _Span(_TRACER, name)
