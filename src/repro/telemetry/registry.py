"""Process-wide metrics registry: counters, gauges, and histograms.

The paper's profiling library keeps "a history of performance and power
measurements ... accessible to the application or runtime" (Section
III-D).  This module is the reproduction's equivalent for the *software*
pipeline itself: every layer (hardware caches, profiling, scheduler,
evaluation harness, runtime) registers named instruments here, and a
single :meth:`MetricsRegistry.snapshot` renders the whole process state
as a plain, deterministic dict — the ``metrics`` half of
``telemetry.json``.

Design constraints, in order:

* **near-zero overhead when disabled** — every mutating call first
  checks one module-level flag and returns immediately when telemetry
  is off;
* **lock-safe** — instruments may be updated from concurrent
  cross-validation fold workers; each instrument carries its own small
  lock so updates never lose counts;
* **deterministic snapshots** — instruments are reported sorted by
  name, so two snapshots of the same state serialize identically.

Instruments are created lazily and never removed; fetching the same
name twice returns the same object, so hot paths fetch once at import
time and call ``.inc()`` thereafter.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Iterator

__all__ = [
    "BUCKET_BOUNDS",
    "BUCKET_LABELS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_label",
    "counter",
    "estimate_percentiles",
    "gauge",
    "histogram",
    "get_registry",
    "set_enabled",
    "is_enabled",
]


class _State:
    """Module-wide on/off switch (shared by the span tracer).

    Collection starts enabled unless ``REPRO_TELEMETRY`` is set to
    ``0``/``false``/``off`` in the environment — an escape hatch for
    overhead-sensitive runs that never call :func:`set_enabled`.
    """

    enabled: bool = os.environ.get(
        "REPRO_TELEMETRY", "1"
    ).strip().lower() not in ("0", "false", "off")


_STATE = _State()


def set_enabled(enabled: bool) -> None:
    """Globally enable or disable telemetry collection.

    Disabled, every counter/gauge/histogram update and every span is a
    single attribute check — results are never affected either way.
    """
    _STATE.enabled = bool(enabled)


def is_enabled() -> bool:
    """Whether telemetry collection is currently on."""
    return _STATE.enabled


class Counter:
    """A monotonically increasing count (cache hits, records, events)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (no-op while telemetry is disabled)."""
        if not _STATE.enabled:
            return
        with self._lock:
            self._value += n

    def reset(self) -> int:
        """Zero the count atomically; returns the drained value.

        An ``inc`` racing the reset lands entirely before (drained) or
        entirely after (retained) the swap — increments are never lost.
        """
        with self._lock:
            drained = self._value
            self._value = 0
        return drained

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A point-in-time value (cache sizes, pool occupancy)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value (no-op while disabled)."""
        if not _STATE.enabled:
            return
        with self._lock:
            self._value = float(value)

    def reset(self) -> float:
        """Zero the value atomically; returns the drained value."""
        with self._lock:
            drained = self._value
            self._value = 0.0
        return drained

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self._value}>"


#: Histogram bucket boundaries: half-decade log scale covering
#: microseconds to hours — wide enough for any pipeline phase.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(-12, 9)
)
_BUCKET_BOUNDS = BUCKET_BOUNDS  # backwards-compatible private alias

#: Ratio between adjacent bucket bounds (half a decade); also the
#: assumed span of the open-ended first and last buckets.
_BUCKET_RATIO: float = 10.0 ** 0.5


def bucket_label(i: int) -> str:
    """The snapshot key of bucket ``i`` (``"inf"`` for the overflow)."""
    if i < len(BUCKET_BOUNDS):
        return f"le_{BUCKET_BOUNDS[i]:.3e}"
    return "inf"


#: Snapshot key per bucket index, in bucket order.
BUCKET_LABELS: tuple[str, ...] = tuple(
    bucket_label(i) for i in range(len(BUCKET_BOUNDS) + 1)
)

#: Reverse map: snapshot key -> bucket index.
BUCKET_INDEX: dict[str, int] = {
    label: i for i, label in enumerate(BUCKET_LABELS)
}


def estimate_percentiles(
    bucket_counts,
    qs,
    *,
    lo: float | None = None,
    hi: float | None = None,
) -> list[float]:
    """Interpolated percentiles from log-bucket counts.

    ``bucket_counts`` is a dense per-bucket count sequence of length
    ``len(BUCKET_BOUNDS) + 1`` (the trailing slot is the overflow
    bucket).  Within the bucket holding the target rank the estimate
    interpolates *geometrically* (the buckets are log-spaced, so the
    geometric midpoint is the unbiased guess); ``lo``/``hi`` — when the
    caller knows the observed min/max — clamp the result and bound the
    open-ended first/last buckets.  Returns ``nan`` per requested
    percentile when the counts are all zero.
    """
    total = sum(bucket_counts)
    out: list[float] = []
    for q in qs:
        if total <= 0:
            out.append(math.nan)
            continue
        target = max(1.0, (q / 100.0) * total)
        cum = 0
        i = len(bucket_counts) - 1
        frac = 1.0
        for j, n in enumerate(bucket_counts):
            if n and cum + n >= target:
                i, frac = j, (target - cum) / n
                break
            cum += n
        if i == 0:
            upper = BUCKET_BOUNDS[0]
            lower = upper / _BUCKET_RATIO
            if lo is not None and 0 < lo < upper:
                lower = lo
        elif i < len(BUCKET_BOUNDS):
            lower, upper = BUCKET_BOUNDS[i - 1], BUCKET_BOUNDS[i]
        else:
            lower = BUCKET_BOUNDS[-1]
            upper = hi if hi is not None and hi > lower else (
                lower * _BUCKET_RATIO
            )
        value = lower * (upper / lower) ** frac
        if lo is not None:
            value = max(value, lo)
        if hi is not None:
            value = min(value, hi)
        out.append(value)
    return out


class _HistState:
    """One atomically-swappable bundle of histogram accumulators."""

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)


class Histogram:
    """A streaming distribution: count, sum, min/max, log-scale buckets.

    Observations stream in one at a time (no sample retention); the
    snapshot reports count, sum, mean, min, max, and per-bucket counts.
    :meth:`time` is the timer form — a context manager observing the
    elapsed seconds of its block.
    """

    __slots__ = ("name", "_state", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._state = _HistState()
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Stream one observation in (no-op while disabled)."""
        if not _STATE.enabled:
            return
        value = float(value)
        i = 0
        for bound in BUCKET_BOUNDS:
            if value <= bound:
                break
            i += 1
        with self._lock:
            st = self._state
            st.count += 1
            st.sum += value
            if value < st.min:
                st.min = value
            if value > st.max:
                st.max = value
            st.buckets[i] += 1

    class _Timer:
        __slots__ = ("_hist", "_t0")

        def __init__(self, hist: "Histogram") -> None:
            self._hist = hist
            self._t0 = 0.0

        def __enter__(self) -> "Histogram._Timer":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self._hist.observe(time.perf_counter() - self._t0)

    def time(self) -> "Histogram._Timer":
        """Context manager observing the elapsed seconds of its block."""
        return Histogram._Timer(self)

    def reset(self) -> dict:
        """Drop the streamed distribution via an atomic state swap.

        The whole accumulator bundle (count, sum, min/max, buckets) is
        replaced by one reference assignment under the update lock, so
        a concurrent ``observe`` lands entirely in the old state
        (returned) or entirely in the new one — bucket increments can
        never be split across the reset or dropped.  Returns the
        drained distribution as a :meth:`summary`-shaped dict.
        """
        with self._lock:
            drained = self._state
            self._state = _HistState()
        return self._summarize(drained)

    @property
    def count(self) -> int:
        return self._state.count

    @staticmethod
    def _summarize(st: _HistState) -> dict:
        out = {
            "count": st.count,
            "sum": st.sum,
            "mean": st.sum / st.count if st.count else 0.0,
            "min": st.min if st.count else 0.0,
            "max": st.max if st.count else 0.0,
        }
        if st.count:
            p50, p90, p99 = estimate_percentiles(
                st.buckets,
                (50.0, 90.0, 99.0),
                lo=st.min,
                hi=st.max,
            )
            out["p50"], out["p90"], out["p99"] = p50, p90, p99
        nonzero = {
            BUCKET_LABELS[i]: n for i, n in enumerate(st.buckets) if n
        }
        if nonzero:
            out["buckets"] = nonzero
        return out

    def summary(self) -> dict:
        """Deterministic dict view of the streamed distribution,
        including interpolated ``p50``/``p90``/``p99`` estimates (see
        :func:`estimate_percentiles`) once observations exist."""
        with self._lock:
            st = self._state
            copy = _HistState()
            copy.count, copy.sum = st.count, st.sum
            copy.min, copy.max = st.min, st.max
            copy.buckets = list(st.buckets)
        return self._summarize(copy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.name} n={self._state.count}>"


class MetricsRegistry:
    """A named collection of instruments with deterministic snapshots.

    One process-wide instance (:func:`get_registry`) backs the module
    conveniences :func:`counter` / :func:`gauge` / :func:`histogram`;
    tests may build private registries.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument factories (get-or-create) -------------------------------

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first request)."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first request)."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first request)."""
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            names = (
                list(self._counters)
                + list(self._gauges)
                + list(self._histograms)
            )
        return iter(sorted(names))

    # -- views ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry's full state as a plain dict.

        Instruments appear sorted by name, so equal states serialize to
        equal JSON — the determinism ``telemetry.json`` consumers (CI
        assertions, diffing tools) rely on.  Values are collected while
        holding the registry lock, so a snapshot racing :meth:`reset`
        sees the registry entirely before or entirely after the reset,
        never a torn mixture.
        """
        with self._lock:
            return {
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value
                    for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> dict:
        """Zero every instrument (test isolation hook); returns the
        drained state as a :meth:`snapshot`-shaped dict.

        Instruments stay registered: hot paths hold module-level
        references fetched at import time, and dropping the registry's
        entries would orphan those references — they would keep counting
        into objects no snapshot ever reports.  Each instrument drains
        via an atomic state swap under its own update lock, and the
        whole sweep runs under the registry lock, so updates racing the
        reset land entirely in the drained state or entirely in the
        fresh one (never lost), and concurrent snapshots are never
        torn.
        """
        with self._lock:
            return {
                "counters": {
                    name: c.reset()
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.reset()
                    for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.reset()
                    for name, h in sorted(self._histograms.items())
                },
            }


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """The process-wide counter named ``name``."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """The process-wide gauge named ``name``."""
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """The process-wide histogram named ``name``."""
    return _REGISTRY.histogram(name)
