"""Process-wide metrics registry: counters, gauges, and histograms.

The paper's profiling library keeps "a history of performance and power
measurements ... accessible to the application or runtime" (Section
III-D).  This module is the reproduction's equivalent for the *software*
pipeline itself: every layer (hardware caches, profiling, scheduler,
evaluation harness, runtime) registers named instruments here, and a
single :meth:`MetricsRegistry.snapshot` renders the whole process state
as a plain, deterministic dict — the ``metrics`` half of
``telemetry.json``.

Design constraints, in order:

* **near-zero overhead when disabled** — every mutating call first
  checks one module-level flag and returns immediately when telemetry
  is off;
* **lock-safe** — instruments may be updated from concurrent
  cross-validation fold workers; each instrument carries its own small
  lock so updates never lose counts;
* **deterministic snapshots** — instruments are reported sorted by
  name, so two snapshots of the same state serialize identically.

Instruments are created lazily and never removed; fetching the same
name twice returns the same object, so hot paths fetch once at import
time and call ``.inc()`` thereafter.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "set_enabled",
    "is_enabled",
]


class _State:
    """Module-wide on/off switch (shared by the span tracer).

    Collection starts enabled unless ``REPRO_TELEMETRY`` is set to
    ``0``/``false``/``off`` in the environment — an escape hatch for
    overhead-sensitive runs that never call :func:`set_enabled`.
    """

    enabled: bool = os.environ.get(
        "REPRO_TELEMETRY", "1"
    ).strip().lower() not in ("0", "false", "off")


_STATE = _State()


def set_enabled(enabled: bool) -> None:
    """Globally enable or disable telemetry collection.

    Disabled, every counter/gauge/histogram update and every span is a
    single attribute check — results are never affected either way.
    """
    _STATE.enabled = bool(enabled)


def is_enabled() -> bool:
    """Whether telemetry collection is currently on."""
    return _STATE.enabled


class Counter:
    """A monotonically increasing count (cache hits, records, events)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (no-op while telemetry is disabled)."""
        if not _STATE.enabled:
            return
        with self._lock:
            self._value += n

    def reset(self) -> None:
        """Zero the count."""
        with self._lock:
            self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A point-in-time value (cache sizes, pool occupancy)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value (no-op while disabled)."""
        if not _STATE.enabled:
            return
        with self._lock:
            self._value = float(value)

    def reset(self) -> None:
        """Zero the value."""
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self._value}>"


#: Histogram bucket boundaries: half-decade log scale covering
#: microseconds to hours — wide enough for any pipeline phase.
_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(-12, 9)
)


class Histogram:
    """A streaming distribution: count, sum, min/max, log-scale buckets.

    Observations stream in one at a time (no sample retention); the
    snapshot reports count, sum, mean, min, max, and per-bucket counts.
    :meth:`time` is the timer form — a context manager observing the
    elapsed seconds of its block.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_buckets", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Stream one observation in (no-op while disabled)."""
        if not _STATE.enabled:
            return
        value = float(value)
        i = 0
        for bound in _BUCKET_BOUNDS:
            if value <= bound:
                break
            i += 1
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._buckets[i] += 1

    class _Timer:
        __slots__ = ("_hist", "_t0")

        def __init__(self, hist: "Histogram") -> None:
            self._hist = hist
            self._t0 = 0.0

        def __enter__(self) -> "Histogram._Timer":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self._hist.observe(time.perf_counter() - self._t0)

    def time(self) -> "Histogram._Timer":
        """Context manager observing the elapsed seconds of its block."""
        return Histogram._Timer(self)

    def reset(self) -> None:
        """Drop the streamed distribution."""
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf
            self._buckets = [0] * (len(_BUCKET_BOUNDS) + 1)

    @property
    def count(self) -> int:
        return self._count

    def summary(self) -> dict:
        """Deterministic dict view of the streamed distribution."""
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
            buckets = list(self._buckets)
        out = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
        }
        nonzero = {
            f"le_{_BUCKET_BOUNDS[i]:.3e}" if i < len(_BUCKET_BOUNDS) else "inf": n
            for i, n in enumerate(buckets)
            if n
        }
        if nonzero:
            out["buckets"] = nonzero
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.name} n={self._count}>"


class MetricsRegistry:
    """A named collection of instruments with deterministic snapshots.

    One process-wide instance (:func:`get_registry`) backs the module
    conveniences :func:`counter` / :func:`gauge` / :func:`histogram`;
    tests may build private registries.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument factories (get-or-create) -------------------------------

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first request)."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first request)."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first request)."""
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            names = (
                list(self._counters)
                + list(self._gauges)
                + list(self._histograms)
            )
        return iter(sorted(names))

    # -- views ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry's full state as a plain dict.

        Instruments appear sorted by name, so equal states serialize to
        equal JSON — the determinism ``telemetry.json`` consumers (CI
        assertions, diffing tools) rely on.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "histograms": {name: h.summary() for name, h in histograms},
        }

    def reset(self) -> None:
        """Zero every instrument *in place* (test isolation hook).

        Instruments stay registered: hot paths hold module-level
        references fetched at import time, and dropping the registry's
        entries would orphan those references — they would keep counting
        into objects no snapshot ever reports.
        """
        with self._lock:
            for c in self._counters.values():
                c.reset()
            for g in self._gauges.values():
                g.reset()
            for h in self._histograms.values():
                h.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """The process-wide counter named ``name``."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """The process-wide gauge named ``name``."""
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """The process-wide histogram named ``name``."""
    return _REGISTRY.histogram(name)
