"""``telemetry.json``: snapshot, persistence, and pretty-printing.

One artifact ties the whole observability layer together::

    {
      "version": 1,
      "spans": [...],        # hierarchical timing tree (trace_span)
      "metrics": {
        "counters": {...},   # cache hits/misses, records, violations
        "gauges": {...},     # cache sizes
        "histograms": {...}  # phase duration distributions
      }
    }

:func:`write_telemetry` dumps the current process state (``repro eval
--telemetry-out t.json`` and :func:`repro.evaluation.loocv.run_loocv`'s
``telemetry_out=`` call it); ``repro telemetry t.json`` renders a saved
report through :func:`render_telemetry`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.registry import get_registry, is_enabled
from repro.telemetry.spans import get_tracer

__all__ = [
    "TELEMETRY_VERSION",
    "telemetry_snapshot",
    "write_telemetry",
    "load_telemetry",
    "render_telemetry",
    "diff_telemetry",
    "render_telemetry_diff",
]

TELEMETRY_VERSION: int = 1


def telemetry_snapshot() -> dict:
    """The process's current telemetry state as a plain dict."""
    return {
        "version": TELEMETRY_VERSION,
        "enabled": is_enabled(),
        "spans": get_tracer().snapshot(),
        "metrics": get_registry().snapshot(),
    }


def write_telemetry(path: str | Path) -> dict:
    """Write the current snapshot to ``path`` and return it."""
    snapshot = telemetry_snapshot()
    Path(path).write_text(
        json.dumps(snapshot, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return snapshot


def load_telemetry(path: str | Path) -> dict:
    """Load a saved ``telemetry.json`` (validating its version)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    version = data.get("version")
    if version != TELEMETRY_VERSION:
        raise ValueError(
            f"unsupported telemetry version {version!r} "
            f"(expected {TELEMETRY_VERSION})"
        )
    return data


def _render_span(node: dict, depth: int, rows: list[str]) -> None:
    pad = "  " * depth
    count = node.get("count", 0)
    total = node.get("total_s", 0.0)
    mean = total / count if count else 0.0
    rows.append(
        f"  {pad}{node['name']:<{max(2, 38 - 2 * depth)}} "
        f"{count:>6}x {total:>9.3f}s  (avg {mean * 1e3:8.2f} ms)"
    )
    for child in node.get("children", ()):
        _render_span(child, depth + 1, rows)


def render_telemetry(data: dict) -> str:
    """Human-readable rendering of a telemetry snapshot."""
    rows: list[str] = ["Telemetry report"]

    spans = data.get("spans", [])
    rows.append("")
    rows.append("Spans (calls, cumulative time):")
    if spans:
        for node in spans:
            _render_span(node, 0, rows)
    else:
        rows.append("  (no spans recorded)")

    metrics = data.get("metrics", {})
    counters = metrics.get("counters", {})
    rows.append("")
    rows.append("Counters:")
    if counters:
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            rows.append(f"  {name:<{width}}  {counters[name]}")
    else:
        rows.append("  (none)")

    gauges = metrics.get("gauges", {})
    if gauges:
        rows.append("")
        rows.append("Gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            rows.append(f"  {name:<{width}}  {gauges[name]:g}")

    histograms = metrics.get("histograms", {})
    if histograms:
        rows.append("")
        rows.append("Histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            line = (
                f"  {name}: n={h['count']} mean={h['mean']:.4g} "
                f"min={h['min']:.4g} max={h['max']:.4g} sum={h['sum']:.4g}"
            )
            # Interpolated percentiles (absent in pre-monitor reports
            # and for empty histograms).
            if "p50" in h:
                line += (
                    f" p50={h['p50']:.4g} p90={h['p90']:.4g} "
                    f"p99={h['p99']:.4g}"
                )
            rows.append(line)
    return "\n".join(rows)


def diff_telemetry(a: dict, b: dict) -> dict:
    """Structured comparison of two telemetry snapshots (A -> B).

    Counters and gauges report ``(a, b, delta)`` for every name present
    in either snapshot; histograms report count/mean and percentile
    shift.  Useful for before/after runs: ``repro telemetry --diff
    base.json contender.json``.
    """
    ma, mb = a.get("metrics", {}), b.get("metrics", {})
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for kind in ("counters", "gauges"):
        xa, xb = ma.get(kind, {}), mb.get(kind, {})
        for name in sorted(set(xa) | set(xb)):
            va, vb = xa.get(name, 0), xb.get(name, 0)
            out[kind][name] = {"a": va, "b": vb, "delta": vb - va}
    ha, hb = ma.get("histograms", {}), mb.get("histograms", {})
    for name in sorted(set(ha) | set(hb)):
        sa, sb = ha.get(name, {}), hb.get(name, {})
        entry: dict = {
            "count": {
                "a": sa.get("count", 0),
                "b": sb.get("count", 0),
            },
            "mean": {
                "a": sa.get("mean", 0.0),
                "b": sb.get("mean", 0.0),
            },
        }
        for q in ("p50", "p90", "p99"):
            if q in sa or q in sb:
                entry[q] = {"a": sa.get(q), "b": sb.get(q)}
        out["histograms"][name] = entry
    return out


def _fmt_shift(va, vb) -> str:
    if va is None or vb is None:
        return f"{va if va is not None else '--'} -> " \
               f"{vb if vb is not None else '--'}"
    shift = ""
    if va:
        shift = f"  ({(vb - va) / va * 100.0:+.1f}%)"
    return f"{va:.4g} -> {vb:.4g}{shift}"


def render_telemetry_diff(diff: dict, *, all_rows: bool = False) -> str:
    """Human-readable rendering of :func:`diff_telemetry` output.

    By default only changed rows are shown; ``all_rows`` includes the
    unchanged ones too.
    """
    rows: list[str] = ["Telemetry diff (A -> B)"]

    counters = diff.get("counters", {})
    shown = {
        n: d for n, d in counters.items() if all_rows or d["delta"]
    }
    rows.append("")
    rows.append(f"Counters ({len(shown)} changed of {len(counters)}):")
    if shown:
        width = max(len(n) for n in shown)
        for name, d in shown.items():
            rows.append(
                f"  {name:<{width}}  {d['a']} -> {d['b']}"
                f"  ({d['delta']:+})"
            )
    else:
        rows.append("  (no change)")

    gauges = diff.get("gauges", {})
    shown = {n: d for n, d in gauges.items() if all_rows or d["delta"]}
    if shown:
        rows.append("")
        rows.append("Gauges:")
        width = max(len(n) for n in shown)
        for name, d in shown.items():
            rows.append(
                f"  {name:<{width}}  {d['a']:g} -> {d['b']:g}"
                f"  ({d['delta']:+g})"
            )

    histograms = diff.get("histograms", {})
    shown = {
        n: d
        for n, d in histograms.items()
        if all_rows or d["count"]["a"] != d["count"]["b"]
    }
    if shown:
        rows.append("")
        rows.append("Histograms:")
        for name, d in shown.items():
            rows.append(
                f"  {name}: n {d['count']['a']} -> {d['count']['b']}, "
                f"mean {_fmt_shift(d['mean']['a'], d['mean']['b'])}"
            )
            for q in ("p50", "p90", "p99"):
                if q in d:
                    rows.append(
                        f"    {q}: {_fmt_shift(d[q]['a'], d[q]['b'])}"
                    )
    return "\n".join(rows)
