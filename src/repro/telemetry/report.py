"""``telemetry.json``: snapshot, persistence, and pretty-printing.

One artifact ties the whole observability layer together::

    {
      "version": 1,
      "spans": [...],        # hierarchical timing tree (trace_span)
      "metrics": {
        "counters": {...},   # cache hits/misses, records, violations
        "gauges": {...},     # cache sizes
        "histograms": {...}  # phase duration distributions
      }
    }

:func:`write_telemetry` dumps the current process state (``repro eval
--telemetry-out t.json`` and :func:`repro.evaluation.loocv.run_loocv`'s
``telemetry_out=`` call it); ``repro telemetry t.json`` renders a saved
report through :func:`render_telemetry`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.registry import get_registry, is_enabled
from repro.telemetry.spans import get_tracer

__all__ = [
    "TELEMETRY_VERSION",
    "telemetry_snapshot",
    "write_telemetry",
    "load_telemetry",
    "render_telemetry",
]

TELEMETRY_VERSION: int = 1


def telemetry_snapshot() -> dict:
    """The process's current telemetry state as a plain dict."""
    return {
        "version": TELEMETRY_VERSION,
        "enabled": is_enabled(),
        "spans": get_tracer().snapshot(),
        "metrics": get_registry().snapshot(),
    }


def write_telemetry(path: str | Path) -> dict:
    """Write the current snapshot to ``path`` and return it."""
    snapshot = telemetry_snapshot()
    Path(path).write_text(
        json.dumps(snapshot, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return snapshot


def load_telemetry(path: str | Path) -> dict:
    """Load a saved ``telemetry.json`` (validating its version)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    version = data.get("version")
    if version != TELEMETRY_VERSION:
        raise ValueError(
            f"unsupported telemetry version {version!r} "
            f"(expected {TELEMETRY_VERSION})"
        )
    return data


def _render_span(node: dict, depth: int, rows: list[str]) -> None:
    pad = "  " * depth
    count = node.get("count", 0)
    total = node.get("total_s", 0.0)
    mean = total / count if count else 0.0
    rows.append(
        f"  {pad}{node['name']:<{max(2, 38 - 2 * depth)}} "
        f"{count:>6}x {total:>9.3f}s  (avg {mean * 1e3:8.2f} ms)"
    )
    for child in node.get("children", ()):
        _render_span(child, depth + 1, rows)


def render_telemetry(data: dict) -> str:
    """Human-readable rendering of a telemetry snapshot."""
    rows: list[str] = ["Telemetry report"]

    spans = data.get("spans", [])
    rows.append("")
    rows.append("Spans (calls, cumulative time):")
    if spans:
        for node in spans:
            _render_span(node, 0, rows)
    else:
        rows.append("  (no spans recorded)")

    metrics = data.get("metrics", {})
    counters = metrics.get("counters", {})
    rows.append("")
    rows.append("Counters:")
    if counters:
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            rows.append(f"  {name:<{width}}  {counters[name]}")
    else:
        rows.append("  (none)")

    gauges = metrics.get("gauges", {})
    if gauges:
        rows.append("")
        rows.append("Gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            rows.append(f"  {name:<{width}}  {gauges[name]:g}")

    histograms = metrics.get("histograms", {})
    if histograms:
        rows.append("")
        rows.append("Histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            rows.append(
                f"  {name}: n={h['count']} mean={h['mean']:.4g} "
                f"min={h['min']:.4g} max={h['max']:.4g} sum={h['sum']:.4g}"
            )
    return "\n".join(rows)
