"""Observability for the offline -> online pipeline.

Three cooperating pieces, all process-wide and all near-free when
disabled via :func:`set_enabled`:

* :mod:`repro.telemetry.registry` — named counters, gauges, and
  streaming histograms with lock-safe updates and deterministic
  snapshots (cache hit/miss accounting, per-method selection and
  cap-violation counts);
* :mod:`repro.telemetry.spans` — ``with trace_span("offline/cluster")``
  hierarchical timing of the full pipeline (characterization ->
  frontier -> dissimilarity -> clustering -> regression -> CART ->
  online sample/classify/predict/select);
* :mod:`repro.telemetry.logs` — structured logging (human or JSON
  lines on stderr) for fold progress, cluster assignments,
  cap-violation events, and scheduler decisions;
* :mod:`repro.telemetry.report` — the ``telemetry.json`` artifact tying
  spans and metrics together;
* :mod:`repro.telemetry.monitor` — the continuous layer: a ring buffer
  of registry snapshots, SLO burn-rate alerting, exemplar tracing,
  Prometheus/JSONL exporters, and the ``repro top`` ops view.

See ``docs/OBSERVABILITY.md`` for the metric and span catalogue.
"""

from repro.telemetry.logs import configure_logging, get_logger, log_event
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    is_enabled,
    set_enabled,
)
from repro.telemetry.report import (
    TELEMETRY_VERSION,
    diff_telemetry,
    load_telemetry,
    render_telemetry,
    render_telemetry_diff,
    telemetry_snapshot,
    write_telemetry,
)
from repro.telemetry.spans import (
    PhaseTrace,
    SpanNode,
    Tracer,
    get_tracer,
    trace_span,
)
from repro.telemetry.monitor import (
    ExemplarStore,
    Monitor,
    SLOEngine,
    SLOSpec,
    TimeSeriesStore,
    parse_slo,
    render_prometheus,
    render_top,
)

__all__ = [
    "Counter",
    "ExemplarStore",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Monitor",
    "PhaseTrace",
    "SLOEngine",
    "SLOSpec",
    "SpanNode",
    "TELEMETRY_VERSION",
    "TimeSeriesStore",
    "Tracer",
    "configure_logging",
    "counter",
    "diff_telemetry",
    "gauge",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "is_enabled",
    "load_telemetry",
    "log_event",
    "parse_slo",
    "render_prometheus",
    "render_telemetry",
    "render_telemetry_diff",
    "render_top",
    "set_enabled",
    "telemetry_snapshot",
    "trace_span",
    "write_telemetry",
]


def reset() -> None:
    """Drop all collected metrics and spans (test isolation hook)."""
    get_registry().reset()
    get_tracer().reset()
