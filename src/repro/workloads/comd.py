"""CoMD — classical molecular-dynamics proxy application.

The paper's CoMD port contains 7 significant kernels (Section IV-B).
Flavours follow the public CoMD structure: the Lennard-Jones/EAM force
computations dominate runtime and are compute-dense with good GPU
mappings; the position/velocity integrators are trivially parallel
streaming loops; link-cell maintenance and halo exchange are pointer-
chasing, branchy, and a poor GPU fit (they favour the CPU, giving the
clustering something other than "GPU wins" to learn).
"""

from __future__ import annotations

from repro.workloads._build import KernelSpec, build_benchmark
from repro.workloads.families import CharacteristicRanges, InputScaling
from repro.workloads.kernel import Kernel

__all__ = ["comd_kernels", "COMD_KERNEL_NAMES"]

_BASE = CharacteristicRanges(
    work_s=(0.3, 1.2),
    parallel_fraction=(0.85, 0.99),
    mem_fraction=(0.2, 0.6),
    gpu_affinity=(1.0, 7.0),
    gpu_mem_fraction=(0.25, 0.7),
    launch_overhead_s=(0.005, 0.04),
    activity=(0.5, 1.3),
    gpu_activity=(0.5, 1.3),
    vector_fraction=(0.2, 0.7),
    dram_intensity=(0.2, 0.8),
)

_SPECS = [
    KernelSpec("LJForce", 30.0, {
        "gpu_affinity": (5.0, 8.5), "activity": (1.0, 1.4),
        "vector_fraction": (0.5, 0.8), "mem_fraction": (0.15, 0.35),
    }),
    KernelSpec("EAMForce", 20.0, {
        "gpu_affinity": (3.5, 6.5), "activity": (0.9, 1.3),
        "branch_rate": (0.1, 0.25),
    }),
    KernelSpec("AdvanceVelocity", 4.0, {
        "mem_fraction": (0.55, 0.8), "activity": (0.35, 0.6),
        "gpu_affinity": (2.0, 4.0),
    }),
    KernelSpec("AdvancePosition", 4.0, {
        "mem_fraction": (0.55, 0.8), "activity": (0.35, 0.6),
        "gpu_affinity": (2.0, 4.0),
    }),
    KernelSpec("UpdateLinkCells", 5.0, {
        "gpu_affinity": (0.3, 0.9), "parallel_fraction": (0.6, 0.85),
        "branch_rate": (0.25, 0.45), "l1_miss_rate": (0.04, 0.12),
    }),
    KernelSpec("HaloExchange", 4.0, {
        "gpu_affinity": (0.05, 0.3), "parallel_fraction": (0.5, 0.8),
        "branch_rate": (0.25, 0.45), "mem_fraction": (0.5, 0.8),
        "work_s": (0.05, 0.3),
    }),
    KernelSpec("KineticEnergy", 2.0, {
        "gpu_affinity": (1.0, 3.0), "parallel_fraction": (0.8, 0.95),
    }),
]

_INPUTS = {
    "Small": InputScaling(work_scale=0.4, mem_shift=-0.05),
    "Large": InputScaling(work_scale=2.0, mem_shift=0.08),
}

#: The 7 CoMD kernel names in declaration order.
COMD_KERNEL_NAMES: tuple[str, ...] = tuple(s.name for s in _SPECS)


def comd_kernels() -> list[Kernel]:
    """All CoMD (kernel, input) combinations: 7 kernels x 2 inputs."""
    return build_benchmark("CoMD", _SPECS, _BASE, _INPUTS)
