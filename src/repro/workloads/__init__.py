"""Synthetic benchmark suite — the workload substrate.

The paper evaluates on OpenMP/OpenCL ports of three DOE exascale proxy
applications (LULESH, CoMD, SMC) plus Rodinia's LU (Section IV-B): 36
kernels, 65 benchmark/input combinations.  Without that source code or
the hardware to run it, this subpackage defines synthetic kernels whose
latent characteristics (memory-boundedness, Amdahl fraction, GPU
affinity, launch overhead, switching activity, cache behaviour) are
sampled per benchmark family from flavour-matched ranges — wide enough
to reproduce the paper's reported diversity (best-config power 19-55 W,
performance spans 1.62x-367x).

The suite is fully deterministic: kernel characteristics derive from
CRC32-stable seeds of the kernel identity, so every process builds the
identical suite.
"""

from repro.workloads.comd import COMD_KERNEL_NAMES, comd_kernels
from repro.workloads.families import (
    CharacteristicRanges,
    InputScaling,
    sample_characteristics,
    stable_seed,
)
from repro.workloads.kernel import Kernel
from repro.workloads.lu import LU_KERNEL_NAMES, lu_kernels
from repro.workloads.lulesh import LULESH_KERNEL_NAMES, lulesh_kernels
from repro.workloads.microbench import microbenchmark_suite
from repro.workloads.smc import SMC_KERNEL_NAMES, smc_kernels
from repro.workloads.suite import Suite, build_suite

__all__ = [
    "COMD_KERNEL_NAMES",
    "CharacteristicRanges",
    "InputScaling",
    "Kernel",
    "LULESH_KERNEL_NAMES",
    "LU_KERNEL_NAMES",
    "SMC_KERNEL_NAMES",
    "Suite",
    "build_suite",
    "comd_kernels",
    "lu_kernels",
    "lulesh_kernels",
    "microbenchmark_suite",
    "sample_characteristics",
    "smc_kernels",
    "stable_seed",
]
