"""LULESH — Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics.

The paper's OpenCL/OpenMP LULESH port contains 20 significant kernels
(Section IV-B) and is run at two input sizes (the figures report
"LULESH Small" and "LULESH Large").  The kernel names below follow the
public LULESH source; their flavours reflect the code's structure:

* the hourglass-control and stress-integration kernels dominate runtime,
  are FLOP-dense, vectorizable, and map very well to the GPU — Table I
  shows ``CalcFBHourglassForce`` reaching its best performance on the
  GPU with the CPU at most 66 % of it;
* nodal update loops (position/velocity/acceleration) are streaming,
  memory-bound, and cheap;
* EOS/material kernels are branchy with gather/scatter access, making
  them a middling GPU fit;
* the time-constraint reduction is latency-bound and CPU-leaning.
"""

from __future__ import annotations

from repro.workloads._build import KernelSpec, build_benchmark
from repro.workloads.families import CharacteristicRanges, InputScaling
from repro.workloads.kernel import Kernel

__all__ = ["lulesh_kernels", "LULESH_KERNEL_NAMES"]

_BASE = CharacteristicRanges(
    work_s=(0.4, 1.5),
    parallel_fraction=(0.9, 0.995),
    mem_fraction=(0.25, 0.6),
    gpu_affinity=(3.0, 9.0),
    gpu_mem_fraction=(0.3, 0.7),
    launch_overhead_s=(0.005, 0.03),
    activity=(0.6, 1.2),
    gpu_activity=(0.6, 1.2),
    vector_fraction=(0.3, 0.85),
    dram_intensity=(0.2, 0.8),
)

# (name, rel_weight, flavour overrides)
_SPECS = [
    KernelSpec("CalcFBHourglassForce", 18.0, {
        "gpu_affinity": (6.0, 9.0), "vector_fraction": (0.6, 0.9),
        "activity": (0.9, 1.3), "gpu_mem_fraction": (0.55, 0.75),
    }),
    KernelSpec("CalcHourglassControlForElems", 12.0, {
        "gpu_affinity": (5.0, 8.0), "vector_fraction": (0.5, 0.8),
    }),
    KernelSpec("IntegrateStressForElems", 10.0, {
        "gpu_affinity": (4.0, 8.0), "activity": (0.8, 1.2),
    }),
    KernelSpec("CalcKinematicsForElems", 8.0, {
        "gpu_affinity": (3.5, 7.0),
    }),
    KernelSpec("CalcMonotonicQGradientsForElems", 6.0, {
        "mem_fraction": (0.4, 0.65),
    }),
    KernelSpec("CalcMonotonicQRegionForElems", 4.0, {
        "branch_rate": (0.15, 0.3),
    }),
    KernelSpec("CalcEnergyForElems", 6.0, {
        "branch_rate": (0.15, 0.3), "gpu_affinity": (2.0, 5.0),
    }),
    KernelSpec("CalcPressureForElems", 4.0, {
        "gpu_affinity": (2.5, 6.0),
    }),
    KernelSpec("EvalEOSForElems", 4.0, {
        "branch_rate": (0.2, 0.35), "gpu_affinity": (1.5, 4.0),
    }),
    KernelSpec("CalcSoundSpeedForElems", 2.0, {}),
    KernelSpec("CalcForceForNodes", 3.0, {
        "mem_fraction": (0.5, 0.75), "dram_intensity": (0.5, 0.9),
    }),
    KernelSpec("CalcAccelerationForNodes", 2.0, {
        "mem_fraction": (0.55, 0.8), "activity": (0.4, 0.7),
        "gpu_affinity": (2.0, 4.5),
    }),
    KernelSpec("ApplyAccelerationBCsForNodes", 1.0, {
        "parallel_fraction": (0.7, 0.9), "gpu_affinity": (0.8, 2.0),
        "work_s": (0.05, 0.2),
    }),
    KernelSpec("CalcVelocityForNodes", 2.0, {
        "mem_fraction": (0.55, 0.8), "activity": (0.4, 0.7),
    }),
    KernelSpec("CalcPositionForNodes", 2.0, {
        "mem_fraction": (0.55, 0.8), "activity": (0.4, 0.7),
    }),
    KernelSpec("CalcLagrangeElements", 3.0, {}),
    KernelSpec("CalcQForElems", 3.0, {
        "mem_fraction": (0.4, 0.7),
    }),
    KernelSpec("UpdateVolumesForElems", 1.0, {
        "mem_fraction": (0.6, 0.85), "activity": (0.3, 0.6),
        "gpu_affinity": (1.5, 3.5), "work_s": (0.1, 0.4),
    }),
    KernelSpec("CalcCourantConstraintForElems", 1.5, {
        "parallel_fraction": (0.75, 0.92), "gpu_affinity": (0.6, 1.8),
        "branch_rate": (0.2, 0.4),
    }),
    KernelSpec("CalcHydroConstraintForElems", 1.5, {
        "parallel_fraction": (0.75, 0.92), "gpu_affinity": (0.6, 1.8),
        "branch_rate": (0.2, 0.4),
    }),
]

_INPUTS = {
    "Small": InputScaling(work_scale=0.35, mem_shift=-0.08, launch_scale=1.0),
    "Large": InputScaling(work_scale=2.5, mem_shift=0.1, launch_scale=1.0),
}

#: The 20 LULESH kernel names in declaration order.
LULESH_KERNEL_NAMES: tuple[str, ...] = tuple(s.name for s in _SPECS)


def lulesh_kernels() -> list[Kernel]:
    """All LULESH (kernel, input) combinations: 20 kernels x 2 inputs."""
    return build_benchmark("LULESH", _SPECS, _BASE, _INPUTS)
