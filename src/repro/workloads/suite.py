"""The full benchmark suite: 36 kernels, 65 benchmark/input combinations.

Section IV-B of the paper: "our benchmarks contain 36 kernels. Running
benchmarks with various inputs increases the variance in kernel behavior,
and increases our benchmark/input combination count to 65."  The
composition reproducing those counts:

=========  ========  ========  =============
Benchmark  Kernels   Inputs    Combinations
=========  ========  ========  =============
LULESH     20        2         40
CoMD       7         2         14
SMC        8         1         8
LU         1         3         3
**Total**  **36**              **65**
=========  ========  ========  =============
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.comd import comd_kernels
from repro.workloads.kernel import Kernel
from repro.workloads.lu import lu_kernels
from repro.workloads.lulesh import lulesh_kernels
from repro.workloads.smc import smc_kernels

__all__ = ["Suite", "build_suite"]

#: Benchmark names in canonical order.
BENCHMARKS: tuple[str, ...] = ("LULESH", "CoMD", "SMC", "LU")


@dataclass(frozen=True)
class Suite:
    """The assembled benchmark suite.

    ``kernels`` holds every (benchmark, input, kernel) combination; the
    accessors slice it by benchmark or reporting group.
    """

    kernels: tuple[Kernel, ...]

    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self):
        return iter(self.kernels)

    def benchmarks(self) -> list[str]:
        """Benchmark names, in canonical order."""
        seen: list[str] = []
        for k in self.kernels:
            if k.benchmark not in seen:
                seen.append(k.benchmark)
        return seen

    def groups(self) -> list[str]:
        """Reporting groups (benchmark/input combinations) in order."""
        seen: list[str] = []
        for k in self.kernels:
            if k.group not in seen:
                seen.append(k.group)
        return seen

    def for_benchmark(self, benchmark: str) -> list[Kernel]:
        """All kernels of one benchmark (every input)."""
        found = [k for k in self.kernels if k.benchmark == benchmark]
        if not found:
            raise KeyError(f"unknown benchmark {benchmark!r}")
        return found

    def for_group(self, group: str) -> list[Kernel]:
        """All kernels of one benchmark/input combination."""
        found = [k for k in self.kernels if k.group == group]
        if not found:
            raise KeyError(f"unknown group {group!r}")
        return found

    def get(self, uid: str) -> Kernel:
        """Look up a kernel by its unique id."""
        for k in self.kernels:
            if k.uid == uid:
                return k
        raise KeyError(f"no kernel with uid {uid!r}")

    def distinct_kernel_count(self) -> int:
        """Number of distinct (benchmark, kernel-name) pairs — the
        paper's "36 kernels"."""
        return len({(k.benchmark, k.name) for k in self.kernels})


def build_suite() -> Suite:
    """Assemble the deterministic full suite (same result every call)."""
    kernels: list[Kernel] = []
    kernels.extend(lulesh_kernels())
    kernels.extend(comd_kernels())
    kernels.extend(smc_kernels())
    kernels.extend(lu_kernels())
    return Suite(kernels=tuple(kernels))
