"""SMC — combustion (reacting compressible Navier-Stokes) proxy app.

The paper's SMC port contains 8 significant kernels (Section IV-B) and
is run at a single input in our suite (the paper's figures report one
SMC group; SMC contributes 8 of the 65 benchmark/input combinations).
Flavours follow the BoxLib SMC structure: wide-stencil hyperbolic and
diffusive terms are bandwidth-hungry; chemistry (reaction rates) is an
enormous pile of independent per-cell ODE arithmetic — very GPU
friendly and power dense (this family supplies the suite's hottest
kernels, reaching the ~55 W best-configuration power the paper
mentions); boundary fills are thin, branchy, and CPU-leaning.
"""

from __future__ import annotations

from repro.workloads._build import KernelSpec, build_benchmark
from repro.workloads.families import CharacteristicRanges, InputScaling
from repro.workloads.kernel import Kernel

__all__ = ["smc_kernels", "SMC_KERNEL_NAMES"]

_BASE = CharacteristicRanges(
    work_s=(0.5, 2.0),
    parallel_fraction=(0.88, 0.99),
    mem_fraction=(0.3, 0.7),
    gpu_affinity=(1.5, 7.5),
    gpu_mem_fraction=(0.3, 0.8),
    launch_overhead_s=(0.01, 0.05),
    activity=(0.5, 1.4),
    gpu_activity=(0.5, 1.4),
    vector_fraction=(0.2, 0.8),
    dram_intensity=(0.3, 0.9),
)

_SPECS = [
    KernelSpec("CToPrim", 6.0, {
        "mem_fraction": (0.45, 0.7), "dram_intensity": (0.5, 0.9),
    }),
    KernelSpec("HypTerm", 16.0, {
        "mem_fraction": (0.4, 0.65), "gpu_affinity": (3.0, 6.5),
        "vector_fraction": (0.4, 0.8),
    }),
    KernelSpec("DiffTerm", 14.0, {
        "mem_fraction": (0.45, 0.7), "gpu_affinity": (2.5, 6.0),
    }),
    KernelSpec("ChemTerm", 22.0, {
        "gpu_affinity": (5.0, 8.5), "activity": (1.0, 1.4),
        "gpu_activity": (1.0, 1.4), "mem_fraction": (0.1, 0.3),
        "vector_fraction": (0.5, 0.9), "dram_intensity": (0.1, 0.4),
    }),
    KernelSpec("GetRates", 10.0, {
        "gpu_affinity": (4.0, 7.5), "activity": (1.0, 1.5),
        "branch_rate": (0.1, 0.25), "mem_fraction": (0.1, 0.35),
    }),
    KernelSpec("TransportCoeffs", 6.0, {
        "gpu_affinity": (2.0, 5.0),
    }),
    KernelSpec("FillBoundary", 3.0, {
        "gpu_affinity": (0.3, 0.9), "parallel_fraction": (0.6, 0.85),
        "branch_rate": (0.25, 0.45), "work_s": (0.05, 0.3),
        "mem_fraction": (0.5, 0.8),
    }),
    KernelSpec("UpdateRK3", 4.0, {
        "mem_fraction": (0.6, 0.85), "activity": (0.35, 0.6),
        "gpu_affinity": (2.0, 4.5),
    }),
]

_INPUTS = {
    "Ref": InputScaling(work_scale=1.0),
}

#: The 8 SMC kernel names in declaration order.
SMC_KERNEL_NAMES: tuple[str, ...] = tuple(s.name for s in _SPECS)


def smc_kernels() -> list[Kernel]:
    """All SMC (kernel, input) combinations: 8 kernels x 1 input."""
    return build_benchmark("SMC", _SPECS, _BASE, _INPUTS)
