"""Characteristic distributions per benchmark family.

Each benchmark family (LULESH, CoMD, SMC, LU) is described by per-latent-
characteristic sampling ranges plus optional per-kernel overrides, so
kernels within a family share a flavour (e.g. CoMD force kernels are
compute-dense and GPU-friendly; its halo exchange is branchy and
CPU-bound) while still varying kernel to kernel.  The paper reports large
within-suite variance — best-configuration power from 19 W to 55 W and
performance spans from 1.62x to 367x (Section III-B) — and the ranges
here are wide enough to reproduce that spread.

Sampling is deterministic: every kernel derives its own
:class:`numpy.random.Generator` from a stable CRC32 of its identity
string, so the suite is identical across processes and Python versions
(``hash()`` randomization never enters).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.hardware.kernelmodel import KernelCharacteristics

__all__ = ["CharacteristicRanges", "InputScaling", "sample_characteristics", "stable_seed"]


@dataclass(frozen=True)
class CharacteristicRanges:
    """Uniform sampling ranges ``(lo, hi)`` for each latent characteristic."""

    work_s: tuple[float, float] = (0.5, 2.0)
    parallel_fraction: tuple[float, float] = (0.85, 0.99)
    mem_fraction: tuple[float, float] = (0.2, 0.7)
    gpu_affinity: tuple[float, float] = (1.5, 8.0)
    gpu_mem_fraction: tuple[float, float] = (0.3, 0.8)
    launch_overhead_s: tuple[float, float] = (0.005, 0.05)
    activity: tuple[float, float] = (0.5, 1.2)
    gpu_activity: tuple[float, float] = (0.5, 1.2)
    vector_fraction: tuple[float, float] = (0.1, 0.8)
    branch_rate: tuple[float, float] = (0.02, 0.25)
    l1_miss_rate: tuple[float, float] = (0.005, 0.08)
    l2_miss_ratio: tuple[float, float] = (0.1, 0.8)
    tlb_miss_rate: tuple[float, float] = (0.0001, 0.005)
    dram_intensity: tuple[float, float] = (0.1, 0.9)

    def override(self, **ranges: tuple[float, float]) -> "CharacteristicRanges":
        """A copy with some ranges replaced (used for per-kernel flavour)."""
        return replace(self, **ranges)


@dataclass(frozen=True)
class InputScaling:
    """How an input size rescales sampled characteristics.

    Attributes
    ----------
    work_scale:
        Multiplier on ``work_s`` (problem size).
    mem_shift:
        Additive shift on memory-bound fractions — larger inputs spill
        caches and become more memory bound (clamped to valid range).
    launch_scale:
        Multiplier on launch overhead; overhead is roughly constant in
        absolute terms, so relative to larger work it shrinks — we keep
        it absolute and let ``work_scale`` do that naturally, but small
        inputs can pay extra driver overhead per element.
    """

    work_scale: float = 1.0
    mem_shift: float = 0.0
    launch_scale: float = 1.0

    def apply(self, chars: KernelCharacteristics) -> KernelCharacteristics:
        def clamp(v: float, lo: float, hi: float) -> float:
            return min(max(v, lo), hi)

        return replace(
            chars,
            work_s=chars.work_s * self.work_scale,
            mem_fraction=clamp(chars.mem_fraction + self.mem_shift, 0.0, 0.97),
            gpu_mem_fraction=clamp(
                chars.gpu_mem_fraction + self.mem_shift, 0.0, 0.97
            ),
            launch_overhead_s=chars.launch_overhead_s * self.launch_scale,
        )


def stable_seed(*parts: str | int) -> int:
    """A process-stable 32-bit seed derived from identity strings."""
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


def sample_characteristics(
    ranges: CharacteristicRanges, rng: np.random.Generator
) -> KernelCharacteristics:
    """Draw one kernel's latent characteristics from family ranges.

    Values are drawn uniformly and independently per field, in the
    field-declaration order of :class:`CharacteristicRanges` (stable, so
    the draw is reproducible for a given generator state).
    """
    values: dict[str, float] = {}
    for f in fields(ranges):
        lo, hi = getattr(ranges, f.name)
        if lo > hi:
            raise ValueError(f"range for {f.name} is inverted: ({lo}, {hi})")
        values[f.name] = float(rng.uniform(lo, hi)) if hi > lo else float(lo)
    return KernelCharacteristics(**values)
