"""Parametric microbenchmark generator.

Paper Section III-B: "In this paper, we use a cross-validation scheme to
select training kernels; however, the training set could be composed of
microbenchmarks or a standard benchmark suite."  This module provides
that alternative: a grid of synthetic microbenchmarks sweeping the
latent characteristic space along the axes that drive
power/performance scaling — memory-boundedness, parallel fraction, GPU
affinity, and switching activity — with the remaining characteristics
drawn deterministically per point.

Training on microbenchmarks and validating on the *entire* application
suite is a stronger generalization test than leave-one-benchmark-out:
no application kernel is ever seen during training (see
``benchmarks/test_bench_microbench_training.py``).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.workloads.families import stable_seed
from repro.workloads.kernel import Kernel
from repro.hardware.kernelmodel import KernelCharacteristics

__all__ = ["microbenchmark_suite"]

#: Default grid levels per swept axis.
_MEM_LEVELS = (0.1, 0.45, 0.8)
_PARALLEL_LEVELS = (0.6, 0.9, 0.99)
_GPU_AFFINITY_LEVELS = (0.3, 2.0, 7.0)
_ACTIVITY_LEVELS = (0.45, 1.1)


def microbenchmark_suite(
    *,
    mem_levels: tuple[float, ...] = _MEM_LEVELS,
    parallel_levels: tuple[float, ...] = _PARALLEL_LEVELS,
    gpu_affinity_levels: tuple[float, ...] = _GPU_AFFINITY_LEVELS,
    activity_levels: tuple[float, ...] = _ACTIVITY_LEVELS,
) -> list[Kernel]:
    """Build the microbenchmark grid (default: 3x3x3x2 = 54 kernels).

    Each grid point becomes a kernel named by its swept levels (e.g.
    ``ub_mem45_par90_gpu2.0_act1.1``) under the pseudo-benchmark
    ``Microbench``.  Unswept characteristics are drawn from a seeded
    generator per point, so the suite is fully deterministic.
    """
    kernels: list[Kernel] = []
    grid = list(
        product(mem_levels, parallel_levels, gpu_affinity_levels, activity_levels)
    )
    if not grid:
        raise ValueError("microbenchmark grid is empty")
    for mem, par, aff, act in grid:
        name = (
            f"ub_mem{round(100 * mem):02d}_par{round(100 * par):02d}"
            f"_gpu{aff:.1f}_act{act:.2f}"
        )
        rng = np.random.default_rng(stable_seed("Microbench", name))
        chars = KernelCharacteristics(
            work_s=float(rng.uniform(0.5, 1.5)),
            parallel_fraction=par,
            mem_fraction=mem,
            gpu_affinity=aff,
            gpu_mem_fraction=float(np.clip(mem + rng.uniform(-0.1, 0.1), 0.0, 0.95)),
            launch_overhead_s=float(rng.uniform(0.005, 0.03)),
            activity=act,
            gpu_activity=float(np.clip(act + rng.uniform(-0.15, 0.15), 0.1, 1.8)),
            vector_fraction=float(rng.uniform(0.1, 0.8)),
            branch_rate=float(rng.uniform(0.02, 0.3)),
            l1_miss_rate=float(0.005 + 0.07 * mem),
            l2_miss_ratio=float(0.1 + 0.6 * mem),
            tlb_miss_rate=float(rng.uniform(1e-4, 3e-3)),
            dram_intensity=float(np.clip(mem + rng.uniform(-0.1, 0.2), 0.05, 1.0)),
        )
        kernels.append(
            Kernel(
                name=name,
                benchmark="Microbench",
                input_size="Grid",
                characteristics=chars,
                time_weight=1.0 / len(grid),
            )
        )
    return kernels
