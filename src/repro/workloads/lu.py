"""LU — Rodinia's LU decomposition benchmark.

LU is the paper's single-kernel benchmark (Section IV-B), chosen for its
relevance to LINPACK.  Our suite runs it at three input sizes, which —
with LULESH (20x2), CoMD (7x2), and SMC (8x1) — brings the total to
exactly 65 benchmark/input combinations and 36 distinct kernels, the
paper's counts.

LU Small is the paper's stress case (Figure 7): its power-performance
frontier jumps from 10.4 % to 89.0 % of peak performance between 17.2 W
and 17.6 W as the best device switches from CPU to GPU, and *every*
3-or-4-thread CPU configuration exceeds 17.2 W.  To reproduce that
cliff, the LU kernel combines a large GPU affinity (blocked dense
factorization maps superbly to the GPU) with low switching activity
(so the GPU-active power floor lands in the high teens rather than the
mid-20s) and mediocre CPU thread scaling (pivoting serializes).
"""

from __future__ import annotations

from repro.workloads._build import KernelSpec, build_benchmark
from repro.workloads.families import CharacteristicRanges, InputScaling
from repro.workloads.kernel import Kernel

__all__ = ["lu_kernels", "LU_KERNEL_NAMES"]

_BASE = CharacteristicRanges(
    work_s=(0.8, 1.5),
    parallel_fraction=(0.55, 0.72),
    mem_fraction=(0.25, 0.45),
    gpu_affinity=(7.5, 9.5),
    gpu_mem_fraction=(0.6, 0.8),
    launch_overhead_s=(0.002, 0.008),
    activity=(0.35, 0.55),
    gpu_activity=(0.3, 0.5),
    vector_fraction=(0.4, 0.7),
    dram_intensity=(0.15, 0.4),
)

_SPECS = [KernelSpec("LUDecomposition", 1.0, {})]

_INPUTS = {
    "Small": InputScaling(work_scale=0.3, mem_shift=-0.05, launch_scale=1.0),
    "Medium": InputScaling(work_scale=1.0),
    "Large": InputScaling(work_scale=4.0, mem_shift=0.1),
}

#: The single LU kernel name.
LU_KERNEL_NAMES: tuple[str, ...] = tuple(s.name for s in _SPECS)


def lu_kernels() -> list[Kernel]:
    """All LU (kernel, input) combinations: 1 kernel x 3 inputs."""
    return build_benchmark("LU", _SPECS, _BASE, _INPUTS)
