"""Kernel and benchmark identity types.

A :class:`Kernel` is one computational kernel of one benchmark at one
input size — the unit the paper profiles, clusters, and schedules
(Section III).  The paper evaluates 36 distinct kernels; running
benchmarks with multiple inputs yields 65 benchmark/input *combinations*
(Section IV-B), and our suite reproduces both counts exactly
(:mod:`repro.workloads.suite`).

The latent :class:`~repro.hardware.kernelmodel.KernelCharacteristics`
attached to each kernel are ground truth for the simulator only; the
modeling pipeline never reads them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.kernelmodel import KernelCharacteristics

__all__ = ["Kernel"]


@dataclass(frozen=True)
class Kernel:
    """One (benchmark, input size, kernel) combination.

    Attributes
    ----------
    name:
        Kernel name within its benchmark (e.g. ``CalcFBHourglassForce``).
    benchmark:
        Benchmark the kernel belongs to (``LULESH``, ``CoMD``, ``SMC``,
        ``LU``).
    input_size:
        Input-size label (``Small``, ``Large``, ...).  The paper treats
        the same kernel under different inputs as distinct modeling
        targets (Section VI discusses automating this distinction).
    characteristics:
        Latent ground-truth properties driving the simulator.
    time_weight:
        This kernel's share of its benchmark/input combination's total
        runtime; method comparisons are weighted by it (Section V-D).
        Weights within one group sum to 1.
    """

    name: str
    benchmark: str
    input_size: str
    characteristics: KernelCharacteristics
    time_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not self.benchmark or not self.input_size:
            raise ValueError("name, benchmark, and input_size must be non-empty")
        if not 0.0 < self.time_weight <= 1.0:
            raise ValueError(f"time_weight={self.time_weight} outside (0, 1]")

    @property
    def uid(self) -> str:
        """Globally unique id, e.g. ``LULESH/Small/CalcFBHourglassForce``."""
        return f"{self.benchmark}/{self.input_size}/{self.name}"

    def with_context(self, context: str) -> "Kernel":
        """A copy of this kernel distinguished by an invocation context.

        Paper Section VI: "for identifying use in distinct contexts, the
        runtime could use call stacks to differentiate between
        invocations of the same kernel from distinct points in the
        application."  A contextualized kernel has its own uid, so the
        runtime samples, classifies, and schedules it independently —
        exactly what call-stack keying buys on a real system.
        """
        if not context:
            raise ValueError("context must be non-empty")
        if "@" in self.name:
            raise ValueError("kernel already carries a context")
        return Kernel(
            name=f"{self.name}@{context}",
            benchmark=self.benchmark,
            input_size=self.input_size,
            characteristics=self.characteristics,
            time_weight=self.time_weight,
        )

    @property
    def group(self) -> str:
        """Reporting group — the benchmark/input combination label used by
        the paper's per-benchmark figures (e.g. ``LULESH Small``)."""
        return f"{self.benchmark} {self.input_size}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.uid
