"""Internal helper assembling benchmark kernel lists from specs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.families import (
    CharacteristicRanges,
    InputScaling,
    sample_characteristics,
    stable_seed,
)
from repro.workloads.kernel import Kernel

__all__ = ["KernelSpec", "build_benchmark"]


@dataclass(frozen=True)
class KernelSpec:
    """Declaration of one kernel inside a benchmark definition module.

    Attributes
    ----------
    name:
        Kernel name.
    rel_weight:
        Relative share of benchmark runtime (normalized per input group).
    overrides:
        Family-range overrides expressing this kernel's flavour, passed
        to :meth:`CharacteristicRanges.override`.
    """

    name: str
    rel_weight: float = 1.0
    overrides: dict[str, tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rel_weight <= 0:
            raise ValueError("rel_weight must be positive")


def build_benchmark(
    benchmark: str,
    specs: list[KernelSpec],
    base_ranges: CharacteristicRanges,
    inputs: dict[str, InputScaling],
) -> list[Kernel]:
    """Instantiate every (kernel, input) combination of a benchmark.

    Characteristics are sampled once per *kernel* (from a seed stable in
    the kernel's identity) and then rescaled per input, so the same
    kernel under two inputs shares its flavour but differs in work size
    and memory pressure — exactly how real inputs behave.
    """
    if not specs:
        raise ValueError("benchmark needs at least one kernel spec")
    if not inputs:
        raise ValueError("benchmark needs at least one input size")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate kernel names in {benchmark}")

    total_weight = sum(s.rel_weight for s in specs)
    kernels: list[Kernel] = []
    for spec in specs:
        rng = np.random.default_rng(stable_seed(benchmark, spec.name))
        ranges = base_ranges.override(**spec.overrides)
        base_chars = sample_characteristics(ranges, rng)
        for input_size, scaling in inputs.items():
            kernels.append(
                Kernel(
                    name=spec.name,
                    benchmark=benchmark,
                    input_size=input_size,
                    characteristics=scaling.apply(base_chars),
                    time_weight=spec.rel_weight / total_weight,
                )
            )
    return kernels
