"""The decision service: immutable engine snapshots, batched answers.

:class:`DecisionService` owns the shared read-only state of a serving
process — the trained :class:`~repro.core.model.AdaptiveModel`, the
per-kernel whole-space predictions, and the memoized
:class:`~repro.core.scheduler.CapSweepTable` per kernel — published
atomically as an :class:`EngineSnapshot`.  Writers (warming a new
kernel, quarantining a configuration) copy, extend, and swap the
snapshot under a publish lock; readers grab ``self._snapshot`` once per
batch and never lock, so the hot path is a single attribute read (an
atomic reference swap under the GIL) plus array math.

Graceful degradation happens per request, never per batch: sampling
retries and conservative fallbacks are handled inside
:class:`~repro.core.predictor.OnlinePredictor` during warm-up, and any
kernel that still cannot be served (unknown uid, invalid cap, a
:class:`~repro.core.scheduler.NoFeasibleConfigError` under strict
quarantine) maps to an error :class:`DecisionResult` while the rest of
the batch proceeds.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.model import AdaptiveModel
from repro.core.predictor import KernelPrediction, OnlinePredictor
from repro.core.scheduler import CapSweepTable, NoFeasibleConfigError, Scheduler
from repro.faults import SampleRunError
from repro.hardware.apu import TrinityAPU
from repro.hardware.config import Configuration
from repro.profiling.library import ProfilingLibrary
from repro.server.engine import DecisionRequest, decide_batch
from repro.telemetry import counter, histogram, trace_span
from repro.workloads import build_suite

__all__ = [
    "DecisionResult",
    "DecisionService",
    "EngineSnapshot",
    "build_default_service",
]

# Request accounting (docs/SERVER.md, docs/OBSERVABILITY.md).
_REQUESTS = counter("server.requests")
_BATCHES = counter("server.batches")
_ERRORS = counter("server.errors")
_BATCH_SIZE = histogram("server.batch_size")

# Per-request error codes carried by DecisionResult.error.
ERROR_UNKNOWN_KERNEL = "unknown-kernel"
ERROR_INVALID_CAP = "invalid-cap"
ERROR_NO_FEASIBLE_CONFIG = "no-feasible-config"
ERROR_SAMPLE_FAILED = "sample-failed"


@dataclass(frozen=True)
class DecisionResult:
    """Answer to one :class:`~repro.server.engine.DecisionRequest`.

    ``error`` is ``None`` on success; otherwise one of the
    ``ERROR_*`` codes and every predicted field is a placeholder
    (``config`` ``None``, NaN predictions, ``feasible`` False).
    """

    kernel_uid: str
    power_cap_w: float
    config: Configuration | None
    predicted_power_w: float
    predicted_performance: float
    feasible: bool
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the request was answered with a configuration."""
        return self.error is None


def _error_result(request: DecisionRequest, error: str) -> DecisionResult:
    return DecisionResult(
        kernel_uid=request.kernel_uid,
        power_cap_w=request.power_cap_w,
        config=None,
        predicted_power_w=math.nan,
        predicted_performance=math.nan,
        feasible=False,
        error=error,
    )


@dataclass(frozen=True)
class EngineSnapshot:
    """One immutable, atomically-published engine state.

    Attributes
    ----------
    version:
        Monotonic publish counter (hammer tests assert reads are torn-
        free by checking invariants against a single grabbed snapshot).
    scheduler:
        The selection policy the tables were built with.
    predictions:
        Whole-space prediction per warmed kernel uid (read-only view).
    tables:
        Memoized cap-sweep table per *servable* uid.  A warmed uid
        missing here had no selectable configuration at table-build
        time (strict full quarantine) and is reported per request as
        ``no-feasible-config``.
    """

    version: int
    scheduler: Scheduler
    predictions: Mapping[str, KernelPrediction]
    tables: Mapping[str, CapSweepTable]

    def infeasible(self, uid: str) -> bool:
        """Warmed but unservable: predicted, yet no sweep table."""
        return uid in self.predictions and uid not in self.tables


class DecisionService:
    """Long-lived decision facade over the array engine.

    Parameters
    ----------
    model:
        Trained adaptive model used to predict unseen kernels.
    library:
        Profiling library for the two online sample iterations (attach
        a fault plan to ``library.apu`` to exercise degradation).
    kernels:
        The servable kernel catalogue (default: the full built suite).
        Requests for uids outside it answer ``unknown-kernel``.
    scheduler:
        Selection policy shared by every request (default
        maximize-performance).
    """

    def __init__(
        self,
        model: AdaptiveModel,
        library: ProfilingLibrary,
        *,
        kernels: Iterable | None = None,
        scheduler: Scheduler | None = None,
    ) -> None:
        self._predictor = OnlinePredictor(model, library)
        self._scheduler = scheduler if scheduler is not None else Scheduler()
        catalogue = build_suite() if kernels is None else kernels
        self._kernels = {k.uid: k for k in catalogue}
        self._publish_lock = threading.Lock()
        self._snapshot = EngineSnapshot(
            version=0,
            scheduler=self._scheduler,
            predictions=MappingProxyType({}),
            tables=MappingProxyType({}),
        )

    @property
    def snapshot(self) -> EngineSnapshot:
        """The current engine snapshot (grab once, then read freely)."""
        return self._snapshot

    @property
    def kernel_uids(self) -> list[str]:
        """Every servable kernel uid, in catalogue order."""
        return list(self._kernels)

    # -- publishing (copy-on-write under the publish lock) ----------------

    def _publish(
        self,
        predictions: dict[str, KernelPrediction],
        tables: dict[str, CapSweepTable],
    ) -> None:
        snap = self._snapshot
        self._snapshot = EngineSnapshot(
            version=snap.version + 1,
            scheduler=self._scheduler,
            predictions=MappingProxyType(predictions),
            tables=MappingProxyType(tables),
        )

    def warm(self, kernels: Iterable | None = None) -> dict[str, str]:
        """Sample, predict, and publish sweep tables for kernels.

        ``kernels`` may hold kernel objects or uids; default is the
        whole catalogue.  Already-warm kernels are skipped (their noise
        streams are counter-based, so warming is idempotent).  Returns
        ``{uid: error_code}`` for kernels that could not be made
        servable; servable ones are absent from the result.
        """
        if kernels is None:
            uids = list(self._kernels)
        else:
            uids = [getattr(k, "uid", k) for k in kernels]
        return self._ensure(uids)

    def _ensure(self, uids: Sequence[str]) -> dict[str, str]:
        """Make uids servable if possible; report the rest."""
        errors = {u: ERROR_UNKNOWN_KERNEL for u in uids if u not in self._kernels}
        snap = self._snapshot
        missing = [
            u
            for u in dict.fromkeys(uids)
            if u not in errors and u not in snap.predictions
        ]
        if missing:
            with self._publish_lock:
                snap = self._snapshot
                todo = [u for u in missing if u not in snap.predictions]
                if todo:
                    predictions = dict(snap.predictions)
                    tables = dict(snap.tables)
                    for uid in todo:
                        with trace_span("server/warm"):
                            try:
                                prediction = self._predictor.predict(
                                    self._kernels[uid]
                                )
                            except SampleRunError:
                                # The predictor degrades internally; a
                                # SampleRunError here means a pathological
                                # retry_limit=0 setup — still per-kernel.
                                errors[uid] = ERROR_SAMPLE_FAILED
                                continue
                            predictions[uid] = prediction
                            try:
                                tables[uid] = self._scheduler.sweep_table(
                                    prediction
                                )
                            except NoFeasibleConfigError:
                                pass  # warmed but unservable
                    self._publish(predictions, tables)
        snap = self._snapshot
        for u in uids:
            if u not in errors and snap.infeasible(u):
                errors[u] = ERROR_NO_FEASIBLE_CONFIG
        return errors

    def publish_predictions(
        self, predictions: Mapping[str, KernelPrediction]
    ) -> dict[str, str]:
        """Publish externally-built predictions (e.g. search-discovered
        frontiers via :func:`repro.search.adapters.archive_to_prediction`)
        as servable kernels.

        Each uid is registered in the catalogue and its sweep table is
        built against the current scheduler (quarantine included), then
        everything is published in one snapshot swap.  Returns
        ``{uid: error_code}`` for entries that are warmed but
        unservable (``no-feasible-config``); servable uids are absent.
        """
        errors: dict[str, str] = {}
        with self._publish_lock:
            snap = self._snapshot
            merged = dict(snap.predictions)
            tables = dict(snap.tables)
            for uid, prediction in predictions.items():
                with trace_span("server/publish"):
                    merged[uid] = prediction
                    # Register the uid so _ensure does not report it
                    # unknown; the prediction itself is already here, so
                    # the predictor never runs for it.
                    self._kernels.setdefault(uid, None)
                    try:
                        tables[uid] = self._scheduler.sweep_table(prediction)
                    except NoFeasibleConfigError:
                        tables.pop(uid, None)
                        errors[uid] = ERROR_NO_FEASIBLE_CONFIG
            self._publish(merged, tables)
        return errors

    # -- quarantine management --------------------------------------------

    def quarantine(self, config: Configuration) -> None:
        """Quarantine a configuration and republish every sweep table."""
        with self._publish_lock:
            self._scheduler.quarantine(config)
            self._rebuild_tables()

    def clear_quarantine(self) -> None:
        """Re-admit quarantined configurations and republish tables."""
        with self._publish_lock:
            self._scheduler.clear_quarantine()
            self._rebuild_tables()

    def _rebuild_tables(self) -> None:
        """Rebuild all sweep tables against the scheduler's current
        quarantine state (call under the publish lock)."""
        snap = self._snapshot
        predictions = dict(snap.predictions)
        tables: dict[str, CapSweepTable] = {}
        for uid, prediction in predictions.items():
            try:
                tables[uid] = self._scheduler.sweep_table(prediction)
            except NoFeasibleConfigError:
                pass
        self._publish(predictions, tables)

    # -- serving -----------------------------------------------------------

    @staticmethod
    def _cap_error(request: DecisionRequest) -> str | None:
        cap = request.power_cap_w
        try:
            valid = math.isfinite(cap) and cap > 0
        except TypeError:
            valid = False
        return None if valid else ERROR_INVALID_CAP

    def decide(self, request: DecisionRequest) -> DecisionResult:
        """Answer one request on the unbatched per-request path.

        This is the baseline the batching front end is benchmarked
        against: one span, one counter bump, one
        :meth:`Scheduler.select` per request.
        """
        with trace_span("server/request"):
            _REQUESTS.inc()
            error = self._cap_error(request)
            if error is None:
                error = self._ensure([request.kernel_uid]).get(
                    request.kernel_uid
                )
            if error is not None:
                _ERRORS.inc()
                return _error_result(request, error)
            snap = self._snapshot
            prediction = snap.predictions[request.kernel_uid]
            try:
                decision = snap.scheduler.select(
                    prediction, request.power_cap_w
                )
            except NoFeasibleConfigError:
                _ERRORS.inc()
                return _error_result(request, ERROR_NO_FEASIBLE_CONFIG)
            return DecisionResult(
                kernel_uid=request.kernel_uid,
                power_cap_w=request.power_cap_w,
                config=decision.config,
                predicted_power_w=decision.predicted_power_w,
                predicted_performance=decision.predicted_performance,
                feasible=decision.predicted_feasible,
            )

    def decide_batch(
        self, requests: Sequence[DecisionRequest]
    ) -> list[DecisionResult]:
        """Answer a coalesced batch with one grouped engine sweep.

        Per-request failures (unknown kernel, invalid cap, no feasible
        configuration) degrade that request to an error result; the
        rest of the batch is answered normally.
        """
        requests = list(requests)
        with trace_span("server/batch"):
            _BATCHES.inc()
            _REQUESTS.inc(len(requests))
            _BATCH_SIZE.observe(float(len(requests)))
            results: list[DecisionResult | None] = [None] * len(requests)

            live: list[int] = []
            for i, request in enumerate(requests):
                error = self._cap_error(request)
                if error is not None:
                    results[i] = _error_result(request, error)
                else:
                    live.append(i)

            if live:
                errors = self._ensure(
                    list({requests[i].kernel_uid for i in live})
                )
                if errors:
                    still = []
                    for i in live:
                        error = errors.get(requests[i].kernel_uid)
                        if error is not None:
                            results[i] = _error_result(requests[i], error)
                        else:
                            still.append(i)
                    live = still

            if live:
                snap = self._snapshot
                batch = decide_batch(
                    snap.scheduler,
                    snap.predictions,
                    [requests[i].kernel_uid for i in live],
                    np.array(
                        [requests[i].power_cap_w for i in live],
                        dtype=np.float64,
                    ),
                    tables=snap.tables,
                )
                for j, i in enumerate(live):
                    results[i] = DecisionResult(
                        kernel_uid=requests[i].kernel_uid,
                        power_cap_w=requests[i].power_cap_w,
                        config=batch.config(j),
                        predicted_power_w=float(batch.predicted_power_w[j]),
                        predicted_performance=float(
                            batch.predicted_performance[j]
                        ),
                        feasible=bool(batch.feasible[j]),
                    )

            n_errors = sum(1 for r in results if r is not None and not r.ok)
            if n_errors:
                _ERRORS.inc(n_errors)
            return results  # type: ignore[return-value]


def build_default_service(
    *,
    seed: int = 0,
    scheduler: Scheduler | None = None,
    fault_plan=None,
    backend: str = "trinity",
) -> DecisionService:
    """Train a model on the full suite and wire a service over it.

    Training draws from the process-wide profile-once
    :class:`~repro.profiling.store.CharacterizationStore` (clean, never
    fault-injected); ``fault_plan`` — a
    :class:`~repro.faults.FaultPlan` or path to one — attaches to the
    *serving* machine only, so sampling degradation is exercised
    without corrupting the model, mirroring ``repro runtime``'s
    attach-after-training semantics.  ``backend`` selects the served
    machine from the backend registry
    (:func:`repro.hardware.backend.backend_names`); training happens
    natively on that machine.
    """
    from repro.hardware.backend import create_backend
    from repro.profiling.store import CharacterizationStore

    suite = build_suite()
    kernels = list(suite)
    store = CharacterizationStore.shared(suite, seed=seed, backend=backend)
    apu = create_backend(backend, seed=seed)
    model = AdaptiveModel.train(
        store.characterize(kernels),
        dissimilarity=store.dissimilarity_submatrix(kernels),
        config_space=apu.config_space,
    )
    if fault_plan is not None:
        from repro.faults import FaultPlan

        if isinstance(fault_plan, (str, bytes)) or hasattr(
            fault_plan, "__fspath__"
        ):
            fault_plan = FaultPlan.from_file(fault_plan)
        apu.inject_faults(fault_plan)
    library = ProfilingLibrary(apu, seed=seed)
    return DecisionService(
        model, library, kernels=kernels, scheduler=scheduler
    )
