"""The pure batched decision kernel shared by server and harness.

:func:`decide_batch` is the single selection path for heterogeneous
``(kernel, cap)`` request batches: it groups requests by kernel (dict
encoding against the prediction catalogue, then one integer
:func:`numpy.unique`), answers each group through a memoized
:class:`~repro.core.scheduler.CapSweepTable` (one binary search per
cap), and scatters results back into request order as a
structure-of-arrays :class:`BatchDecisions`.  Both the LOOCV harness
(via :meth:`repro.methods.model_method.ModelMethod.decide_many`) and
the decision server (:mod:`repro.server.service`) call it, so the two
paths cannot drift — the server's answers are bit-identical to the
evaluation's by construction.

Telemetry mirrors ``Scheduler.select_many`` exactly: the whole batch
runs under one ``online/select`` span and counters update in bulk
(``scheduler.selections`` once per request,
``scheduler.infeasible_fallbacks`` for the subset of caps no
configuration was predicted to meet).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.predictor import KernelPrediction
from repro.core.scheduler import CapSweepTable, Scheduler, SchedulerDecision
from repro.hardware.config import Configuration
from repro.telemetry import counter, trace_span

__all__ = ["BatchDecisions", "DecisionRequest", "decide_batch"]

# Same counter objects as core.scheduler (the registry returns one
# object per name), so engine-path decisions land in the same totals.
_SELECTIONS = counter("scheduler.selections")
_FALLBACKS = counter("scheduler.infeasible_fallbacks")


class DecisionRequest:
    """One decision request: which kernel, under what cap."""

    __slots__ = ("kernel_uid", "power_cap_w")

    def __init__(self, kernel_uid: str, power_cap_w: float) -> None:
        self.kernel_uid = kernel_uid
        self.power_cap_w = power_cap_w

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecisionRequest({self.kernel_uid!r}, "
            f"power_cap_w={self.power_cap_w!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DecisionRequest)
            and self.kernel_uid == other.kernel_uid
            and self.power_cap_w == other.power_cap_w
        )

    def __hash__(self) -> int:
        return hash((self.kernel_uid, self.power_cap_w))


class BatchDecisions:
    """Structure-of-arrays result of :func:`decide_batch`.

    Parallel to the request arrays: ``config_index[i]`` is the chosen
    configuration's index in kernel ``kernel_uids[i]``'s prediction,
    with the predicted power/performance gathered alongside.  Full
    :class:`Configuration` / :class:`SchedulerDecision` objects are
    materialized lazily per element — the hot path (throughput
    benchmarks, bulk evaluation) never pays for them.
    """

    __slots__ = (
        "kernel_uids",
        "power_caps_w",
        "config_index",
        "feasible",
        "predicted_power_w",
        "predicted_performance",
        "_predictions",
    )

    def __init__(
        self,
        kernel_uids: Sequence[str],
        power_caps_w: np.ndarray,
        config_index: np.ndarray,
        feasible: np.ndarray,
        predicted_power_w: np.ndarray,
        predicted_performance: np.ndarray,
        predictions: Mapping[str, KernelPrediction],
    ) -> None:
        self.kernel_uids = kernel_uids
        self.power_caps_w = power_caps_w
        self.config_index = config_index
        self.feasible = feasible
        self.predicted_power_w = predicted_power_w
        self.predicted_performance = predicted_performance
        self._predictions = predictions

    def __len__(self) -> int:
        return self.config_index.size

    def config(self, i: int) -> Configuration:
        """The selected configuration for request ``i``."""
        prediction = self._predictions[self.kernel_uids[i]]
        return prediction.config_at(int(self.config_index[i]))

    def configs(self) -> list[Configuration]:
        """All selected configurations, in request order."""
        return [self.config(i) for i in range(len(self))]

    def decision(self, i: int) -> SchedulerDecision:
        """Request ``i`` as a full :class:`SchedulerDecision`."""
        return SchedulerDecision(
            config=self.config(i),
            predicted_power_w=float(self.predicted_power_w[i]),
            predicted_performance=float(self.predicted_performance[i]),
            predicted_feasible=bool(self.feasible[i]),
        )

    def decisions(self) -> list[SchedulerDecision]:
        """All requests as :class:`SchedulerDecision` objects."""
        return [self.decision(i) for i in range(len(self))]


def decide_batch(
    scheduler: Scheduler,
    predictions: Mapping[str, KernelPrediction],
    kernel_uids: Sequence[str] | np.ndarray,
    power_caps_w: Sequence[float] | np.ndarray,
    *,
    tables: Mapping[str, CapSweepTable] | None = None,
    risk_margin: float | None = None,
    risk_averse: bool = False,
    confidence_z: float = 1.0,
) -> BatchDecisions:
    """Answer a heterogeneous ``(kernel, cap)`` batch in one sweep.

    Parameters
    ----------
    scheduler:
        Selection policy; used to build sweep tables for kernels not
        already covered by ``tables``.
    predictions:
        Whole-space prediction per kernel uid.  Every uid appearing in
        ``kernel_uids`` must be present (:class:`KeyError` otherwise —
        the server resolves unknown kernels to per-request errors
        *before* calling this).
    kernel_uids, power_caps_w:
        Parallel request arrays.
    tables:
        Optional memoized :class:`CapSweepTable` per uid (the server's
        snapshot provides these); missing entries are built on the fly.

    Returns
    -------
    BatchDecisions
        Results in request order, element-identical to calling
        ``scheduler.select(predictions[uid], cap)`` per request.
    """
    caps = np.asarray(power_caps_w, dtype=np.float64)
    if isinstance(kernel_uids, np.ndarray):
        uids: Sequence[str] = kernel_uids.tolist()
    else:
        uids = list(kernel_uids)
    if caps.ndim != 1 or len(uids) != caps.size:
        raise ValueError(
            "kernel_uids and power_caps_w must be parallel 1-d sequences"
        )
    if caps.size and caps.min() <= 0:
        raise ValueError("power_cap_w must be positive")

    with trace_span("online/select"):
        n = caps.size
        index = np.empty(n, dtype=np.intp)
        feasible = np.empty(n, dtype=bool)
        power = np.empty(n, dtype=np.float64)
        perf = np.empty(n, dtype=np.float64)

        # Group by kernel without a string sort: encode uids against the
        # prediction catalogue (str hashes are cached on the request
        # objects, so this is ~10x cheaper than np.unique on a str
        # array), then sort the small integer codes.
        code_of = {uid: code for code, uid in enumerate(predictions)}
        try:
            codes = np.fromiter(
                (code_of[u] for u in uids), dtype=np.int64, count=n
            )
        except KeyError as exc:
            raise KeyError(
                f"no prediction for kernel uid {exc.args[0]!r}"
            ) from None
        names = list(predictions)
        unique_codes, inverse = np.unique(codes, return_inverse=True)
        if unique_codes.size <= 1:
            groups = [(g, slice(None)) for g in range(unique_codes.size)]
        else:
            # Stable argsort of the group codes yields each kernel's
            # request positions as one contiguous slice.
            order = np.argsort(inverse, kind="stable")
            starts = np.searchsorted(
                inverse[order], np.arange(unique_codes.size)
            )
            ends = np.append(starts[1:], n)
            groups = [
                (g, order[starts[g]:ends[g]])
                for g in range(unique_codes.size)
            ]

        for g, rows in groups:
            uid = names[int(unique_codes[g])]
            prediction = predictions[uid]
            table = tables.get(uid) if tables is not None else None
            if table is None:
                table = scheduler.sweep_table(
                    prediction,
                    risk_margin=risk_margin,
                    risk_averse=risk_averse,
                    confidence_z=confidence_z,
                )
            g_index, g_feasible = table.lookup(caps[rows])
            index[rows] = g_index
            feasible[rows] = g_feasible
            power[rows] = prediction.power_array[g_index]
            perf[rows] = prediction.performance_array[g_index]

        _SELECTIONS.inc(n)
        infeasible = n - int(np.count_nonzero(feasible))
        if infeasible:
            _FALLBACKS.inc(infeasible)

    return BatchDecisions(
        kernel_uids=uids,
        power_caps_w=caps,
        config_index=index,
        feasible=feasible,
        predicted_power_w=power,
        predicted_performance=perf,
        predictions=predictions,
    )
