"""Server tuning knobs with environment-variable defaults.

The batching window is controlled by two knobs resolved through the
same pattern as ``REPRO_NJOBS`` (see
:func:`repro.evaluation.loocv.resolve_n_jobs`): an explicit value wins,
otherwise the environment variable, otherwise the baked-in default.
CLI flags (``repro serve --max-batch/--max-delay-us``) pass their
values straight into :meth:`ServerConfig.resolve`, so the precedence
is flag > environment > default.

* ``REPRO_SERVER_MAX_BATCH`` — most requests coalesced into one grouped
  sweep (positive integer).
* ``REPRO_SERVER_MAX_DELAY_US`` — longest a request may wait for
  co-batchees before the batch is dispatched anyway (non-negative
  microseconds; ``0`` disables coalescing-by-waiting entirely).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_DELAY_US",
    "DEFAULT_QUEUE_FACTOR",
    "MAX_BATCH_ENV_VAR",
    "MAX_DELAY_ENV_VAR",
    "ServerConfig",
    "resolve_max_batch",
    "resolve_max_delay_us",
]

MAX_BATCH_ENV_VAR = "REPRO_SERVER_MAX_BATCH"
MAX_DELAY_ENV_VAR = "REPRO_SERVER_MAX_DELAY_US"

DEFAULT_MAX_BATCH = 1024
DEFAULT_MAX_DELAY_US = 200.0
# Admission queue bound, as a multiple of max_batch: enough backlog to
# keep the worker saturated without unbounded memory growth under
# overload (excess arrivals shed with ServerOverloadError).
DEFAULT_QUEUE_FACTOR = 8


def _env_value(var: str, convert, kind: str):
    raw = os.environ.get(var, "").strip()
    if not raw:
        return None
    try:
        return convert(raw)
    except ValueError:
        raise ValueError(f"{var} must be {kind}, got {raw!r}") from None


def resolve_max_batch(value: int | None = None) -> int:
    """Resolve the batch-size ceiling: explicit value, else
    ``REPRO_SERVER_MAX_BATCH``, else :data:`DEFAULT_MAX_BATCH`."""
    if value is None:
        value = _env_value(MAX_BATCH_ENV_VAR, int, "an integer")
        if value is None:
            value = DEFAULT_MAX_BATCH
    if value < 1:
        raise ValueError(f"max_batch must be >= 1, got {value}")
    return int(value)


def resolve_max_delay_us(value: float | None = None) -> float:
    """Resolve the batching window: explicit value, else
    ``REPRO_SERVER_MAX_DELAY_US``, else :data:`DEFAULT_MAX_DELAY_US`."""
    if value is None:
        value = _env_value(MAX_DELAY_ENV_VAR, float, "a number")
        if value is None:
            value = DEFAULT_MAX_DELAY_US
    if value < 0:
        raise ValueError(f"max_delay_us must be >= 0, got {value}")
    return float(value)


@dataclass(frozen=True)
class ServerConfig:
    """Frozen batching-front-end configuration.

    Attributes
    ----------
    max_batch:
        Most requests dispatched as one grouped sweep.  A full batch is
        dispatched immediately without waiting out the window.
    max_delay_us:
        Longest a dequeued request waits for co-batchees (microseconds).
    max_queue:
        Admission-queue bound; arrivals beyond it are shed with
        :class:`repro.server.batching.ServerOverloadError`.
    n_workers:
        Dispatcher threads draining the queue (thread variant only).
    """

    max_batch: int = DEFAULT_MAX_BATCH
    max_delay_us: float = DEFAULT_MAX_DELAY_US
    max_queue: int = DEFAULT_MAX_BATCH * DEFAULT_QUEUE_FACTOR
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_us < 0:
            raise ValueError(
                f"max_delay_us must be >= 0, got {self.max_delay_us}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")

    @property
    def max_delay_s(self) -> float:
        """The batching window in seconds."""
        return self.max_delay_us * 1e-6

    @classmethod
    def resolve(
        cls,
        *,
        max_batch: int | None = None,
        max_delay_us: float | None = None,
        max_queue: int | None = None,
        n_workers: int | None = None,
    ) -> "ServerConfig":
        """Build a config with explicit > environment > default
        precedence for the batching knobs."""
        batch = resolve_max_batch(max_batch)
        return cls(
            max_batch=batch,
            max_delay_us=resolve_max_delay_us(max_delay_us),
            max_queue=(
                batch * DEFAULT_QUEUE_FACTOR if max_queue is None else max_queue
            ),
            n_workers=1 if n_workers is None else n_workers,
        )
