"""Batching front ends: coalesce concurrent arrivals into one sweep.

Two variants over the same :class:`~repro.server.service.DecisionService`:

* :class:`DecisionServer` — a thread-based server for synchronous
  callers.  ``submit`` enqueues a request under a condition variable
  and returns a :class:`concurrent.futures.Future`; dispatcher threads
  drain the bounded queue, wait up to ``max_delay_us`` for
  co-batchees (skipped the moment the batch is full — the window
  adapts to queue depth), answer the whole batch with one grouped
  ``decide_batch`` sweep, and demultiplex results into the per-request
  futures.
* :class:`AsyncDecisionServer` — the same loop as an asyncio task for
  event-loop callers; ``await server.decide(request)`` resolves when
  the request's batch completes.

Admission control is a bounded queue: arrivals beyond ``max_queue``
are shed immediately with :class:`ServerOverloadError` (counted under
``server.shed``) rather than queued into unbounded latency.  Each
completed request observes its queue-to-resolution latency into the
``server.latency_s`` histogram.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import Future

from repro.server.config import ServerConfig
from repro.server.engine import DecisionRequest
from repro.server.service import DecisionResult, DecisionService
from repro.telemetry import PhaseTrace, counter, gauge, histogram
from repro.telemetry.monitor.exemplars import (
    active_store,
    record_error,
    record_shed,
    record_slow,
)

__all__ = [
    "AsyncDecisionServer",
    "DecisionServer",
    "ServerClosedError",
    "ServerOverloadError",
]

_SHED = counter("server.shed")
_QUEUE_DEPTH = gauge("server.queue_depth")
_LATENCY = histogram("server.latency_s")

_STOP = object()


def _record_batch_exemplars(
    live: list, results: list[DecisionResult], t_decide: float, now: float
) -> None:
    """Offer this batch's notable requests to the active exemplar store.

    Called once per *batch* (never per request) and only when a monitor
    is attached — the slowest request gets a queued/decide phase trace,
    error results are offered as error exemplars.
    """
    slowest = None
    for (request, _, enqueued), result in zip(live, results):
        latency = now - enqueued
        if result.error is not None:
            record_error(
                request.kernel_uid,
                request.power_cap_w,
                result.error,
                latency_s=latency,
                batch_size=len(live),
            )
        if slowest is None or latency > slowest[0]:
            slowest = (latency, enqueued, request)
    if slowest is not None:
        latency, enqueued, request = slowest
        trace = PhaseTrace()
        trace.add("queued", 0.0, t_decide - enqueued)
        trace.add("decide", t_decide - enqueued, now - t_decide)
        record_slow(
            request.kernel_uid,
            request.power_cap_w,
            latency,
            batch_size=len(live),
            trace=trace,
        )


class ServerOverloadError(RuntimeError):
    """The admission queue was full and the request was shed."""


class ServerClosedError(RuntimeError):
    """The server is not accepting requests (not started, or stopped)."""


class DecisionServer:
    """Thread-based batching server for synchronous callers.

    Use as a context manager (``with DecisionServer(service) as s:``) or
    call :meth:`start`/:meth:`stop` explicitly.  ``stop`` drains: every
    request admitted before the call is still answered.
    """

    def __init__(
        self, service: DecisionService, config: ServerConfig | None = None
    ) -> None:
        self._service = service
        self.config = config if config is not None else ServerConfig.resolve()
        self._entries: deque[tuple[DecisionRequest, Future, float]] = deque()
        self._wake = threading.Condition()
        self._closed = True
        self._threads: list[threading.Thread] = []

    def __enter__(self) -> "DecisionServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> None:
        """Spawn the dispatcher threads and begin accepting requests."""
        with self._wake:
            if self._threads:
                raise RuntimeError("server already started")
            self._closed = False
            self._threads = [
                threading.Thread(
                    target=self._dispatch_loop,
                    name=f"repro-server-{i}",
                    daemon=True,
                )
                for i in range(self.config.n_workers)
            ]
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        """Stop accepting requests, drain the queue, join the workers."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []

    def submit(self, request: DecisionRequest) -> Future:
        """Enqueue a request; the Future resolves to a
        :class:`~repro.server.service.DecisionResult`.

        Raises :class:`ServerClosedError` when the server is not
        running and :class:`ServerOverloadError` when the bounded
        admission queue is full (the shed is counted, not queued).
        """
        with self._wake:
            if self._closed:
                raise ServerClosedError("decision server is not running")
            if len(self._entries) >= self.config.max_queue:
                _SHED.inc()
                record_shed(request.kernel_uid, request.power_cap_w)
                raise ServerOverloadError(
                    f"admission queue full ({self.config.max_queue} pending)"
                )
            future: Future = Future()
            self._entries.append((request, future, time.perf_counter()))
            _QUEUE_DEPTH.set(float(len(self._entries)))
            self._wake.notify()
            return future

    def decide(
        self, request: DecisionRequest, timeout: float | None = None
    ) -> DecisionResult:
        """Submit and block for the result (convenience wrapper)."""
        return self.submit(request).result(timeout)

    def _dispatch_loop(self) -> None:
        cfg = self.config
        delay_s = cfg.max_delay_s
        while True:
            batch: list[tuple[DecisionRequest, Future, float]] = []
            with self._wake:
                while not self._entries and not self._closed:
                    self._wake.wait()
                if not self._entries and self._closed:
                    return
                deadline = time.perf_counter() + delay_s
                while True:
                    while self._entries and len(batch) < cfg.max_batch:
                        batch.append(self._entries.popleft())
                    # Adaptive window: a full batch, a deep backlog, a
                    # closing server, or a zero window dispatches now;
                    # otherwise wait out the remaining delay for
                    # co-batchees.
                    if (
                        len(batch) >= cfg.max_batch
                        or self._entries
                        or self._closed
                        or delay_s <= 0.0
                    ):
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0.0:
                        break
                    self._wake.wait(remaining)
                _QUEUE_DEPTH.set(float(len(self._entries)))
            self._answer(batch)

    def _answer(
        self, batch: list[tuple[DecisionRequest, Future, float]]
    ) -> None:
        # set_running_or_notify_cancel resolves the race with
        # Future.cancel(): each future is either cancelled here, or
        # transitions to RUNNING and is ours to resolve exactly once.
        live = [
            entry for entry in batch if entry[1].set_running_or_notify_cancel()
        ]
        if not live:
            return
        t_decide = time.perf_counter()
        try:
            results = self._service.decide_batch(
                [request for request, _, _ in live]
            )
        except BaseException as exc:  # pragma: no cover - defensive
            for _, future, _ in live:
                future.set_exception(exc)
            return
        now = time.perf_counter()
        for (_, future, enqueued), result in zip(live, results):
            _LATENCY.observe(now - enqueued)
            future.set_result(result)
        if active_store() is not None:
            _record_batch_exemplars(live, results, t_decide, now)


class AsyncDecisionServer:
    """Asyncio batching server: the same coalescing loop as a task.

    Use as an async context manager or call ``await start()`` /
    ``await stop()``.  ``decide`` is a coroutine resolving when the
    request's batch is answered; the underlying grouped sweep runs on
    the event-loop thread (the engine's array math holds the loop for
    microseconds per thousand requests).
    """

    def __init__(
        self, service: DecisionService, config: ServerConfig | None = None
    ) -> None:
        self._service = service
        self.config = config if config is not None else ServerConfig.resolve()
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None

    async def __aenter__(self) -> "AsyncDecisionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def start(self) -> None:
        """Start the dispatcher task on the running loop."""
        if self._task is not None:
            raise RuntimeError("server already started")
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._task = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def stop(self) -> None:
        """Drain the queue and stop the dispatcher task."""
        if self._task is None:
            return
        await self._queue.put(_STOP)
        await self._task
        self._task = None
        self._queue = None

    async def decide(self, request: DecisionRequest) -> DecisionResult:
        """Submit a request and await its result."""
        if self._task is None:
            raise ServerClosedError("decision server is not running")
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request, future, time.perf_counter()))
        except asyncio.QueueFull:
            _SHED.inc()
            record_shed(request.kernel_uid, request.power_cap_w)
            raise ServerOverloadError(
                f"admission queue full ({self.config.max_queue} pending)"
            ) from None
        _QUEUE_DEPTH.set(float(self._queue.qsize()))
        return await future

    async def _dispatch_loop(self) -> None:
        cfg = self.config
        delay_s = cfg.max_delay_s
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            deadline = time.perf_counter() + delay_s
            while len(batch) < cfg.max_batch:
                try:
                    entry = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0.0:
                        break
                    try:
                        entry = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if entry is _STOP:
                    stopping = True
                    break
                batch.append(entry)
            self._answer(batch)

    def _answer(self, batch) -> None:
        live = [entry for entry in batch if not entry[1].cancelled()]
        if not live:
            return
        t_decide = time.perf_counter()
        try:
            results = self._service.decide_batch(
                [request for request, _, _ in live]
            )
        except BaseException as exc:  # pragma: no cover - defensive
            for _, future, _ in live:
                if not future.cancelled():
                    future.set_exception(exc)
            return
        now = time.perf_counter()
        for (_, future, enqueued), result in zip(live, results):
            if not future.cancelled():
                _LATENCY.observe(now - enqueued)
                future.set_result(result)
        if active_store() is not None:
            _record_batch_exemplars(live, results, t_decide, now)
