"""Open-loop Poisson load generation and the admission benchmark.

The generator is *open-loop*: arrival times are drawn up front from an
exponential inter-arrival distribution and requests are submitted on
that schedule regardless of completions, so queueing delay under
overload shows up as latency (measured from each request's *scheduled*
arrival) instead of silently throttling the offered rate — the
standard coordinated-omission-free methodology.

:func:`run_open_loop` drives one :class:`~repro.server.batching.
DecisionServer` at one offered rate; :func:`admission_benchmark` sweeps
several rates with a fresh server each and returns one
:class:`LoadReport` per rate (sustained decisions/s, shed count, and
p50/p99/p999 latency).  These helpers back both
``benchmarks/test_bench_server_throughput.py`` and the
``repro serve`` / ``repro bench-serve`` CLI.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_EXCEPTION, wait
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.server.batching import DecisionServer, ServerOverloadError
from repro.server.config import ServerConfig
from repro.server.engine import DecisionRequest
from repro.server.service import DecisionService

__all__ = [
    "LoadReport",
    "admission_benchmark",
    "render_reports",
    "request_pool",
    "run_open_loop",
]

# Submission-schedule precision: sleep for the bulk of an inter-arrival
# gap (sleeping releases the GIL, letting the dispatcher run), busy-wait
# only the final slice, where time.sleep granularity is too coarse.  A
# long spin here would starve the dispatcher thread and inflate every
# latency percentile by the interpreter switch interval.
_SPIN_THRESHOLD_S = 0.00005


@dataclass(frozen=True)
class LoadReport:
    """One offered-load point of the admission benchmark."""

    offered_rps: float
    duration_s: float
    submitted: int
    completed: int
    shed: int
    errors: int
    sustained_rps: float
    p50_us: float
    p99_us: float
    p999_us: float

    def row(self) -> str:
        """One fixed-width table row (see :func:`render_reports`)."""
        return (
            f"{self.offered_rps:>12,.0f} {self.sustained_rps:>13,.0f} "
            f"{self.completed:>9,} {self.shed:>7,} {self.errors:>7,} "
            f"{self.p50_us:>9,.0f} {self.p99_us:>9,.0f} "
            f"{self.p999_us:>10,.0f}"
        )


def render_reports(reports: Sequence[LoadReport]) -> str:
    """The admission benchmark as a fixed-width text table."""
    header = (
        f"{'offered/s':>12} {'sustained/s':>13} {'completed':>9} "
        f"{'shed':>7} {'errors':>7} {'p50 us':>9} {'p99 us':>9} "
        f"{'p999 us':>10}"
    )
    return "\n".join([header] + [r.row() for r in reports])


def request_pool(
    kernel_uids: Sequence[str],
    *,
    n: int = 1024,
    cap_range: tuple[float, float] = (8.0, 45.0),
    seed: int = 0,
) -> list[DecisionRequest]:
    """A deterministic pool of requests to cycle through: uniformly
    random kernels from the catalogue under uniformly random caps."""
    if not kernel_uids:
        raise ValueError("request_pool needs at least one kernel uid")
    rng = np.random.default_rng(seed)
    uids = rng.choice(np.asarray(kernel_uids, dtype=object), size=n)
    caps = rng.uniform(cap_range[0], cap_range[1], size=n)
    return [
        DecisionRequest(str(uid), float(cap)) for uid, cap in zip(uids, caps)
    ]


def _percentile_us(latencies_s: np.ndarray, q: float) -> float:
    if latencies_s.size == 0:
        return float("nan")
    return float(np.percentile(latencies_s, q) * 1e6)


def run_open_loop(
    server: DecisionServer,
    requests: Sequence[DecisionRequest],
    offered_rps: float,
    duration_s: float,
    *,
    seed: int = 0,
    timeout_s: float = 30.0,
) -> LoadReport:
    """Drive a running server with Poisson arrivals at one offered rate.

    Submits ``offered_rps * duration_s`` requests (cycling through the
    pool in a seeded random order) on a pre-drawn exponential arrival
    schedule, then waits for every admitted request to complete.
    """
    if offered_rps <= 0:
        raise ValueError("offered_rps must be positive")
    rng = np.random.default_rng(seed)
    n = max(1, int(round(offered_rps * duration_s)))
    arrivals = np.cumsum(rng.exponential(1.0 / offered_rps, size=n))
    picks = rng.integers(0, len(requests), size=n)

    futures = []
    latencies: list[float] = []  # appended from the dispatcher thread
    shed = 0
    start = time.perf_counter()
    for i in range(n):
        target = start + arrivals[i]
        while True:
            now = time.perf_counter()
            if now >= target:
                break
            if target - now > _SPIN_THRESHOLD_S:
                time.sleep(target - now - _SPIN_THRESHOLD_S / 2)
        try:
            future = server.submit(requests[picks[i]])
        except ServerOverloadError:
            shed += 1
            continue
        # Latency counts from the *scheduled* arrival: generator lag
        # under overload charges the server, not the schedule.
        future.add_done_callback(
            lambda _f, t=target: latencies.append(time.perf_counter() - t)
        )
        futures.append(future)

    done, pending = wait(futures, timeout=timeout_s, return_when=FIRST_EXCEPTION)
    end = time.perf_counter()
    if pending:  # pragma: no cover - only on a hung server
        raise TimeoutError(f"{len(pending)} requests unresolved after drain")

    errors = sum(1 for future in futures if not future.result().ok)
    latency_arr = np.asarray(latencies, dtype=np.float64)
    return LoadReport(
        offered_rps=float(offered_rps),
        duration_s=float(duration_s),
        submitted=len(futures),
        completed=len(futures),
        shed=shed,
        errors=errors,
        sustained_rps=len(futures) / max(end - start, 1e-12),
        p50_us=_percentile_us(latency_arr, 50.0),
        p99_us=_percentile_us(latency_arr, 99.0),
        p999_us=_percentile_us(latency_arr, 99.9),
    )


def admission_benchmark(
    service: DecisionService,
    requests: Sequence[DecisionRequest],
    offered_rates: Sequence[float],
    duration_s: float,
    *,
    config: ServerConfig | None = None,
    seed: int = 0,
) -> list[LoadReport]:
    """Sweep offered loads, one fresh server per rate."""
    reports = []
    for i, rate in enumerate(offered_rates):
        with DecisionServer(service, config) as server:
            reports.append(
                run_open_loop(
                    server, requests, rate, duration_s, seed=seed + i
                )
            )
    return reports
