"""Prediction-as-a-service: the concurrent decision server.

The paper's runtime makes one sample→classify→predict→select decision
per kernel arrival; at fleet scale those arrivals form a high-rate
concurrent stream.  This package turns the array engine's batched
``select_many`` kernel into a long-lived service:

* :mod:`repro.server.engine` — :func:`decide_batch`, the pure batched
  decision kernel shared with the LOOCV harness (grouped sweeps over
  memoized cap tables), and the :class:`BatchDecisions`
  structure-of-arrays result;
* :mod:`repro.server.service` — :class:`DecisionService`, the facade
  owning immutable engine state published atomically via snapshot
  swap, with per-request error degradation;
* :mod:`repro.server.batching` — :class:`DecisionServer` (threads) and
  :class:`AsyncDecisionServer` (asyncio), coalescing concurrent
  arrivals within a bounded ``max_batch``/``max_delay_us`` window into
  one grouped sweep, bounded-queue admission with explicit shed;
* :mod:`repro.server.config` — :class:`ServerConfig` with
  ``REPRO_SERVER_MAX_BATCH`` / ``REPRO_SERVER_MAX_DELAY_US``
  environment defaults;
* :mod:`repro.server.loadgen` — open-loop Poisson load generation and
  the admission benchmark behind ``repro serve`` / ``repro
  bench-serve`` and ``BENCH_server.json``.

See ``docs/SERVER.md`` for the architecture, batching semantics, and
the ``server.*`` telemetry catalogue.
"""

from repro.server.batching import (
    AsyncDecisionServer,
    DecisionServer,
    ServerClosedError,
    ServerOverloadError,
)
from repro.server.config import ServerConfig
from repro.server.engine import BatchDecisions, DecisionRequest, decide_batch
from repro.server.loadgen import (
    LoadReport,
    admission_benchmark,
    render_reports,
    request_pool,
    run_open_loop,
)
from repro.server.service import (
    DecisionResult,
    DecisionService,
    EngineSnapshot,
    build_default_service,
)

__all__ = [
    "AsyncDecisionServer",
    "BatchDecisions",
    "DecisionRequest",
    "DecisionResult",
    "DecisionServer",
    "DecisionService",
    "EngineSnapshot",
    "LoadReport",
    "ServerClosedError",
    "ServerConfig",
    "ServerOverloadError",
    "admission_benchmark",
    "build_default_service",
    "decide_batch",
    "render_reports",
    "request_pool",
    "run_open_loop",
]
