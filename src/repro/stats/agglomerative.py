"""Average-linkage hierarchical clustering on a dissimilarity matrix.

An alternative relational clusterer to PAM (:mod:`repro.stats.kmedoids`).
The R ``fossil`` package the paper used wraps standard relational
clustering; hierarchical average linkage is the other classic choice and
is exposed so the clustering stage of the pipeline can be swapped (see
``repro.core.clustering.cluster_kernels(method="average")`` and the
cluster-count ablation benchmark).

Implemented as naive Lance–Williams agglomeration: :math:`O(n^3)` overall,
which is irrelevant at this package's scale (tens of kernels).
"""

from __future__ import annotations

import numpy as np

__all__ = ["average_linkage_labels"]


def average_linkage_labels(D: np.ndarray, k: int) -> np.ndarray:
    """Cut an average-linkage dendrogram into ``k`` flat clusters.

    Parameters
    ----------
    D:
        ``(n, n)`` symmetric non-negative dissimilarity matrix.
    k:
        Desired number of flat clusters, ``1 <= k <= n``.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` integer labels in ``[0, k)``, renumbered in order of
        first appearance.
    """
    D = np.asarray(D, dtype=float)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise ValueError(f"dissimilarity matrix must be square, got {D.shape}")
    n = D.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for n={n} points")

    # Active clusters: mapping cluster id -> member indices.
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    # Working inter-cluster distance matrix (average linkage).
    dist = D.copy().astype(float)
    np.fill_diagonal(dist, np.inf)
    active = list(range(n))

    while len(active) > k:
        # Find the closest active pair.
        sub = dist[np.ix_(active, active)]
        flat = int(np.argmin(sub))
        ai, aj = divmod(flat, len(active))
        i, j = active[ai], active[aj]
        if i > j:
            i, j = j, i
        ni, nj = len(members[i]), len(members[j])
        # Lance-Williams update for average linkage: merged-cluster
        # distance is the size-weighted mean of the two parents.
        for m in active:
            if m in (i, j):
                continue
            dist[i, m] = dist[m, i] = (ni * dist[i, m] + nj * dist[j, m]) / (ni + nj)
        members[i].extend(members[j])
        del members[j]
        active.remove(j)
        dist[j, :] = np.inf
        dist[:, j] = np.inf

    labels = np.empty(n, dtype=int)
    for new_id, cid in enumerate(sorted(members, key=lambda c: min(members[c]))):
        labels[members[cid]] = new_id
    return labels
