"""From-scratch statistical-learning substrate.

The paper's modeling pipeline was built on R 3.0.1: multivariate linear
regression (``lm``), relational clustering on a dissimilarity matrix (the
Fossil package), and a CART classification tree (``rpart``).  None of those
are available in this offline environment, so this subpackage provides
faithful NumPy implementations of each building block:

``ols``
    Multivariate ordinary least squares with optional intercept,
    coefficient standard errors, and :math:`R^2` — fit from design
    matrices (:func:`~repro.stats.ols.fit_ols`) or from additive
    sufficient statistics
    (:class:`~repro.stats.ols.GramStats`,
    :func:`~repro.stats.ols.fit_ols_from_gram`).
``kendall``
    Kendall rank correlation (tau-a and tau-b) used to compare the
    orderings of shared configurations on two Pareto frontiers.
``kmedoids``
    Partitioning Around Medoids (PAM) operating directly on a
    dissimilarity matrix — i.e. *relational* clustering — plus silhouette
    scoring for choosing the cluster count.
``agglomerative``
    Average-linkage hierarchical clustering on a dissimilarity matrix, as
    an alternative relational clusterer.
``cart``
    A CART classification tree (Gini impurity) with a printable structure
    mirroring the paper's Figure 3.
``crossval``
    Leave-one-group-out splitting used for the paper's
    leave-one-benchmark-out cross-validation.

All estimators are deterministic given their inputs (PAM's BUILD phase is
deterministic; optional random restarts take an explicit seed).
"""

from repro.stats.agglomerative import average_linkage_labels
from repro.stats.cart import ClassificationTree, TreeNode
from repro.stats.crossval import leave_one_group_out
from repro.stats.kendall import kendall_tau
from repro.stats.kmedoids import KMedoidsResult, pam, silhouette_score
from repro.stats.ols import GramStats, OLSModel, fit_ols, fit_ols_from_gram

__all__ = [
    "ClassificationTree",
    "GramStats",
    "KMedoidsResult",
    "OLSModel",
    "TreeNode",
    "average_linkage_labels",
    "fit_ols",
    "fit_ols_from_gram",
    "kendall_tau",
    "leave_one_group_out",
    "pam",
    "silhouette_score",
]
