"""Kendall rank correlation.

The paper (Section III-B) compares two Pareto frontiers by taking the
configurations present on *both* frontiers and computing the Kendall rank
correlation coefficient between the two orderings: identical orders give
+1, exactly reversed orders give −1.

This module implements both tau-a (no tie correction — appropriate when
comparing two permutations of the same set, the paper's use case) and
tau-b (tie-corrected, matching :func:`scipy.stats.kendalltau`).  The
pair-counting loop is :math:`O(n^2)`, which is ideal here: frontiers hold
at most a few dozen configurations.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

__all__ = ["kendall_tau"]


def kendall_tau(
    x: Sequence[float] | np.ndarray,
    y: Sequence[float] | np.ndarray,
    *,
    variant: Literal["a", "b"] = "b",
) -> float:
    """Kendall rank correlation between paired sequences ``x`` and ``y``.

    Parameters
    ----------
    x, y:
        Equal-length sequences of comparable values (ranks or raw
        scores).  Order matters: element ``i`` of ``x`` is paired with
        element ``i`` of ``y``.
    variant:
        ``"a"`` computes :math:`\\tau_a = (C - D) / \\binom{n}{2}` with no
        tie correction; ``"b"`` divides by the geometric mean of the
        tie-corrected pair counts.

    Returns
    -------
    float
        The correlation in ``[-1, 1]``.  Returns ``nan`` when fewer than
        two pairs are supplied or (for tau-b) when either sequence is
        constant.

    Examples
    --------
    >>> kendall_tau([1, 2, 3], [1, 2, 3])
    1.0
    >>> kendall_tau([1, 2, 3], [3, 2, 1])
    -1.0
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"x and y must be equal-length 1-D, got {x.shape}, {y.shape}")
    n = x.shape[0]
    if n < 2:
        return float("nan")

    # Sign of all pairwise differences; vectorized over the n*n grid.
    dx = np.sign(x[:, np.newaxis] - x[np.newaxis, :])
    dy = np.sign(y[:, np.newaxis] - y[np.newaxis, :])
    iu = np.triu_indices(n, k=1)
    prod = dx[iu] * dy[iu]
    concordant_minus_discordant = float(np.sum(prod))

    n_pairs = n * (n - 1) / 2
    if variant == "a":
        return concordant_minus_discordant / n_pairs

    ties_x = float(np.sum(dx[iu] == 0))
    ties_y = float(np.sum(dy[iu] == 0))
    denom = np.sqrt((n_pairs - ties_x) * (n_pairs - ties_y))
    if denom == 0:
        return float("nan")
    return concordant_minus_discordant / denom
