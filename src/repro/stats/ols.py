"""Multivariate ordinary least squares.

The paper fits two linear-model families per cluster (Section III-B):

* a *performance-ratio* model with **no intercept**,
  :math:`P_{perf}/S_{perf} = a_1 x_1 + \\dots + a_n x_n`, and
* a *power* model **with intercept**,
  :math:`P_{power} = b_0 + b_1 x_1 + \\dots + b_n x_n`,

where the :math:`x_i` are configuration variables and their first-order
interactions.  Both reduce to OLS on a design matrix; this module provides
that shared core via :func:`numpy.linalg.lstsq` (which is robust to
rank-deficient designs, e.g. an interaction column that is constant for
one device).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GramStats", "OLSModel", "fit_ols", "fit_ols_from_gram"]


@dataclass(frozen=True)
class OLSModel:
    """A fitted least-squares linear model.

    Attributes
    ----------
    coef:
        Coefficients, one per design-matrix column (the intercept, when
        fitted, is ``coef[0]`` and ``intercept`` is True).
    intercept:
        Whether the first coefficient is an intercept term.
    r_squared:
        Coefficient of determination on the training data.  For
        no-intercept models this is the *uncentered* :math:`R^2`
        (relative to the zero model), matching standard practice.
    std_errors:
        Coefficient standard errors (NaN where not estimable, e.g. when
        the design is rank deficient or residual dof is 0).
    n_obs:
        Number of training observations.
    rank:
        Numerical rank of the design matrix.
    feature_names:
        Optional column labels for reporting.
    """

    coef: np.ndarray
    intercept: bool
    r_squared: float
    std_errors: np.ndarray
    n_obs: int
    rank: int
    feature_names: tuple[str, ...] = field(default=())
    sigma2: float = float("nan")
    xtx_pinv: np.ndarray | None = None

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the model on design matrix ``X`` (without intercept
        column; one is prepended automatically when the model has one)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[np.newaxis, :]
        if self.intercept:
            X = np.hstack([np.ones((X.shape[0], 1)), X])
        if X.shape[1] != self.coef.shape[0]:
            raise ValueError(
                f"design matrix has {X.shape[1]} columns, model expects "
                f"{self.coef.shape[0]}"
            )
        return X @ self.coef

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Standard deviation of the *prediction* at each row of ``X``.

        Includes both coefficient uncertainty and residual noise:
        :math:`\\sqrt{\\hat\\sigma^2 (1 + x^T (A^T A)^+ x)}`.  Returns
        NaN where the residual variance was not estimable (zero
        residual degrees of freedom).

        The paper's future-work section (VI) proposes using prediction
        confidence to avoid risky configurations; this is the quantity
        that enables it (see ``Scheduler.select(..., risk_averse=True)``).
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[np.newaxis, :]
        if self.intercept:
            X = np.hstack([np.ones((X.shape[0], 1)), X])
        if X.shape[1] != self.coef.shape[0]:
            raise ValueError(
                f"design matrix has {X.shape[1]} columns, model expects "
                f"{self.coef.shape[0]}"
            )
        if self.xtx_pinv is None or np.isnan(self.sigma2):
            return np.full(X.shape[0], np.nan)
        leverage = np.einsum("ij,jk,ik->i", X, self.xtx_pinv, X)
        return np.sqrt(self.sigma2 * (1.0 + np.maximum(leverage, 0.0)))

    def summary(self) -> str:
        """Human-readable coefficient table."""
        names = list(self.feature_names)
        ncoef = self.coef.shape[0]
        if self.intercept:
            names = ["(intercept)"] + names
        while len(names) < ncoef:
            names.append(f"x{len(names)}")
        width = max(len(n) for n in names)
        lines = [f"OLS: n={self.n_obs}  rank={self.rank}  R^2={self.r_squared:.4f}"]
        for name, c, se in zip(names, self.coef, self.std_errors):
            lines.append(f"  {name:<{width}}  {c:+12.6g}  (se {se:.4g})")
        return "\n".join(lines)


@dataclass(frozen=True)
class GramStats:
    """Sufficient statistics of a least-squares problem.

    For a design matrix ``A`` (*including* the intercept column, when
    the model has one) and response ``y``, the triple
    ``(AᵀA, Aᵀy, yᵀy)`` plus the row count is everything OLS needs:
    coefficients, :math:`R^2`, residual variance, and standard errors
    are all functions of these four quantities.  Crucially they are
    *additive over rows*: the statistics of a pooled design are the sum
    of per-block statistics, and removing a block is a subtraction
    (a *downdate*).  That additivity is what lets the training engine
    accumulate per-kernel blocks once and assemble every
    cross-validation fold's per-cluster regression by summation instead
    of rebuilding design matrices.
    """

    xtx: np.ndarray
    xty: np.ndarray
    yty: float
    n_obs: int

    @classmethod
    def from_design(cls, A: np.ndarray, y: np.ndarray) -> "GramStats":
        """Accumulate the statistics of one design block ``(A, y)``."""
        A = np.asarray(A, dtype=float)
        y = np.asarray(y, dtype=float)
        if A.ndim != 2:
            raise ValueError(f"A must be 2-D, got shape {A.shape}")
        if y.ndim != 1 or y.shape[0] != A.shape[0]:
            raise ValueError(f"y shape {y.shape} incompatible with A {A.shape}")
        if not (np.all(np.isfinite(A)) and np.all(np.isfinite(y))):
            raise ValueError("A and y must be finite")
        return cls(
            xtx=A.T @ A,
            xty=A.T @ y,
            yty=float(y @ y),
            n_obs=A.shape[0],
        )

    def _check_compatible(self, other: "GramStats") -> None:
        if self.xtx.shape != other.xtx.shape:
            raise ValueError(
                f"incompatible Gram shapes {self.xtx.shape} vs {other.xtx.shape}"
            )

    def __add__(self, other: "GramStats") -> "GramStats":
        self._check_compatible(other)
        return GramStats(
            xtx=self.xtx + other.xtx,
            xty=self.xty + other.xty,
            yty=self.yty + other.yty,
            n_obs=self.n_obs + other.n_obs,
        )

    def __sub__(self, other: "GramStats") -> "GramStats":
        """Downdate: remove a previously accumulated block."""
        self._check_compatible(other)
        if other.n_obs > self.n_obs:
            raise ValueError("cannot downdate more observations than present")
        return GramStats(
            xtx=self.xtx - other.xtx,
            xty=self.xty - other.xty,
            yty=self.yty - other.yty,
            n_obs=self.n_obs - other.n_obs,
        )

    @staticmethod
    def sum(stats: "list[GramStats] | tuple[GramStats, ...]") -> "GramStats":
        """Vectorized sum of many blocks (one stacked reduction per
        field rather than a chain of pairwise adds)."""
        if not stats:
            raise ValueError("cannot sum zero Gram blocks")
        if len(stats) == 1:
            return stats[0]
        return GramStats(
            xtx=np.sum(np.stack([s.xtx for s in stats]), axis=0),
            xty=np.sum(np.stack([s.xty for s in stats]), axis=0),
            yty=float(sum(s.yty for s in stats)),
            n_obs=sum(s.n_obs for s in stats),
        )


def fit_ols_from_gram(
    stats: GramStats,
    *,
    intercept: bool = True,
    feature_names: tuple[str, ...] | list[str] = (),
    ridge: float = 0.0,
) -> OLSModel:
    """Fit least squares from precomputed sufficient statistics.

    Solves the normal equations ``(AᵀA + λ·Dₙᵢ) β = Aᵀy`` where
    ``Dₙᵢ`` is the identity with a zero in the intercept position
    (the ridge penalty never touches the intercept) — analytically the
    same estimator :func:`fit_ols` computes by row augmentation.  On a
    rank-deficient Gram the solve falls back to the minimum-norm
    ``lstsq`` solution, which coincides with :func:`fit_ols`'s
    pseudo-inverse answer (``X⁺ = (XᵀX)⁺Xᵀ``).

    ``stats`` must be accumulated over the *full* design matrix — when
    ``intercept=True`` that means the leading column of ones is part of
    the design whose Gram was taken, so ``stats.xty[0]`` is ``Σy``.

    Diagnostics (``r_squared``, ``std_errors``, ``sigma2``,
    ``xtx_pinv``) are derived from the same statistics and agree with
    :func:`fit_ols` to floating-point reassociation (≤1e-9 on
    well-scaled problems; the equivalence suite pins this).
    """
    xtx = np.asarray(stats.xtx, dtype=float)
    xty = np.asarray(stats.xty, dtype=float)
    if xtx.ndim != 2 or xtx.shape[0] != xtx.shape[1]:
        raise ValueError(f"xtx must be square, got shape {xtx.shape}")
    p = xtx.shape[0]
    if xty.shape != (p,):
        raise ValueError(f"xty shape {xty.shape} incompatible with xtx {xtx.shape}")
    if stats.n_obs < 1:
        raise ValueError("cannot fit OLS with zero observations")
    if not (np.all(np.isfinite(xtx)) and np.all(np.isfinite(xty))):
        raise ValueError("Gram statistics must be finite")
    if ridge < 0:
        raise ValueError("ridge must be non-negative")
    n = stats.n_obs

    if ridge > 0:
        penalty = np.full(p, ridge)
        if intercept:
            penalty[0] = 0.0  # the intercept is never penalized
        M = xtx + np.diag(penalty)
        # The row-augmented design of fit_ols always has full column
        # rank, which is what its lstsq reports.
        rank = p
    else:
        M = xtx
        rank = int(np.linalg.matrix_rank(xtx, hermitian=True))

    if rank < p:
        coef, *_ = np.linalg.lstsq(M, xty, rcond=None)
    else:
        try:
            coef = np.linalg.solve(M, xty)
        except np.linalg.LinAlgError:  # pragma: no cover - rank said full
            coef, *_ = np.linalg.lstsq(M, xty, rcond=None)

    # Unpenalized residual sum of squares from the identity
    # ||y - Aβ||² = yᵀy - 2βᵀAᵀy + βᵀAᵀAβ (clamped: cancellation can
    # push an exact fit a few ulps negative).
    rss = max(float(stats.yty - 2.0 * (coef @ xty) + coef @ xtx @ coef), 0.0)
    if intercept:
        # Column 0 of the design is all ones, so xty[0] == Σy.
        tss = max(float(stats.yty - (xty[0] ** 2) / n), 0.0)
    else:
        tss = float(stats.yty)
    r_squared = 1.0 - rss / tss if tss > 0 else (1.0 if rss == 0 else 0.0)

    dof = n - rank
    std_errors = np.full(p, np.nan)
    sigma2 = float("nan")
    xtx_pinv = None
    if dof > 0:
        sigma2 = rss / dof
        try:
            xtx_pinv = np.linalg.pinv(xtx)
            diag = np.diag(sigma2 * xtx_pinv)
            std_errors = np.sqrt(np.where(diag >= 0, diag, np.nan))
        except np.linalg.LinAlgError:  # pragma: no cover - pinv rarely fails
            pass

    return OLSModel(
        coef=coef,
        intercept=intercept,
        r_squared=r_squared,
        std_errors=std_errors,
        n_obs=n,
        rank=rank,
        feature_names=tuple(feature_names),
        sigma2=sigma2,
        xtx_pinv=xtx_pinv,
    )


def fit_ols(
    X: np.ndarray,
    y: np.ndarray,
    *,
    intercept: bool = True,
    feature_names: tuple[str, ...] | list[str] = (),
    ridge: float = 0.0,
) -> OLSModel:
    """Fit (optionally ridge-regularized) least squares ``y ~ X``.

    Parameters
    ----------
    X:
        ``(n, p)`` design matrix (no intercept column — pass
        ``intercept=True`` to add one).
    y:
        ``(n,)`` response vector.
    intercept:
        Whether to prepend a constant column.
    feature_names:
        Optional labels for the ``p`` feature columns.
    ridge:
        L2 penalty ``lambda >= 0`` on the non-intercept coefficients.
        Implemented by row augmentation (``sqrt(lambda) * I`` pseudo-
        observations), so the same lstsq path and diagnostics apply.
        The intercept is never penalized.

    Returns
    -------
    OLSModel

    Raises
    ------
    ValueError
        If shapes are inconsistent or there are no observations.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X[:, np.newaxis]
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError(f"y shape {y.shape} incompatible with X shape {X.shape}")
    n = X.shape[0]
    if n == 0:
        raise ValueError("cannot fit OLS with zero observations")
    if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
        raise ValueError("X and y must be finite")
    if ridge < 0:
        raise ValueError("ridge must be non-negative")

    A = np.hstack([np.ones((n, 1)), X]) if intercept else X
    if ridge > 0:
        # Row augmentation: sqrt(lambda) on each non-intercept column.
        p_all = A.shape[1]
        penalty = np.sqrt(ridge) * np.eye(p_all)
        if intercept:
            penalty = penalty[1:, :]  # leave the intercept unpenalized
        A_fit = np.vstack([A, penalty])
        y_fit = np.concatenate([y, np.zeros(penalty.shape[0])])
    else:
        A_fit, y_fit = A, y
    coef, _, rank, _ = np.linalg.lstsq(A_fit, y_fit, rcond=None)

    fitted = A @ coef
    resid = y - fitted
    rss = float(resid @ resid)
    if intercept:
        tss = float(np.sum((y - y.mean()) ** 2))
    else:
        tss = float(y @ y)
    r_squared = 1.0 - rss / tss if tss > 0 else (1.0 if rss == 0 else 0.0)

    # Standard errors from (A'A)^+ scaled by residual variance.
    p = A.shape[1]
    dof = n - rank
    std_errors = np.full(p, np.nan)
    sigma2 = float("nan")
    xtx_pinv = None
    if dof > 0:
        sigma2 = rss / dof
        try:
            xtx_pinv = np.linalg.pinv(A.T @ A)
            diag = np.diag(sigma2 * xtx_pinv)
            std_errors = np.sqrt(np.where(diag >= 0, diag, np.nan))
        except np.linalg.LinAlgError:  # pragma: no cover - pinv rarely fails
            pass

    return OLSModel(
        coef=coef,
        intercept=intercept,
        r_squared=r_squared,
        std_errors=std_errors,
        n_obs=n,
        rank=int(rank),
        feature_names=tuple(feature_names),
        sigma2=sigma2,
        xtx_pinv=xtx_pinv,
    )
