"""Multivariate ordinary least squares.

The paper fits two linear-model families per cluster (Section III-B):

* a *performance-ratio* model with **no intercept**,
  :math:`P_{perf}/S_{perf} = a_1 x_1 + \\dots + a_n x_n`, and
* a *power* model **with intercept**,
  :math:`P_{power} = b_0 + b_1 x_1 + \\dots + b_n x_n`,

where the :math:`x_i` are configuration variables and their first-order
interactions.  Both reduce to OLS on a design matrix; this module provides
that shared core via :func:`numpy.linalg.lstsq` (which is robust to
rank-deficient designs, e.g. an interaction column that is constant for
one device).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["OLSModel", "fit_ols"]


@dataclass(frozen=True)
class OLSModel:
    """A fitted least-squares linear model.

    Attributes
    ----------
    coef:
        Coefficients, one per design-matrix column (the intercept, when
        fitted, is ``coef[0]`` and ``intercept`` is True).
    intercept:
        Whether the first coefficient is an intercept term.
    r_squared:
        Coefficient of determination on the training data.  For
        no-intercept models this is the *uncentered* :math:`R^2`
        (relative to the zero model), matching standard practice.
    std_errors:
        Coefficient standard errors (NaN where not estimable, e.g. when
        the design is rank deficient or residual dof is 0).
    n_obs:
        Number of training observations.
    rank:
        Numerical rank of the design matrix.
    feature_names:
        Optional column labels for reporting.
    """

    coef: np.ndarray
    intercept: bool
    r_squared: float
    std_errors: np.ndarray
    n_obs: int
    rank: int
    feature_names: tuple[str, ...] = field(default=())
    sigma2: float = float("nan")
    xtx_pinv: np.ndarray | None = None

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the model on design matrix ``X`` (without intercept
        column; one is prepended automatically when the model has one)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[np.newaxis, :]
        if self.intercept:
            X = np.hstack([np.ones((X.shape[0], 1)), X])
        if X.shape[1] != self.coef.shape[0]:
            raise ValueError(
                f"design matrix has {X.shape[1]} columns, model expects "
                f"{self.coef.shape[0]}"
            )
        return X @ self.coef

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Standard deviation of the *prediction* at each row of ``X``.

        Includes both coefficient uncertainty and residual noise:
        :math:`\\sqrt{\\hat\\sigma^2 (1 + x^T (A^T A)^+ x)}`.  Returns
        NaN where the residual variance was not estimable (zero
        residual degrees of freedom).

        The paper's future-work section (VI) proposes using prediction
        confidence to avoid risky configurations; this is the quantity
        that enables it (see ``Scheduler.select(..., risk_averse=True)``).
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[np.newaxis, :]
        if self.intercept:
            X = np.hstack([np.ones((X.shape[0], 1)), X])
        if X.shape[1] != self.coef.shape[0]:
            raise ValueError(
                f"design matrix has {X.shape[1]} columns, model expects "
                f"{self.coef.shape[0]}"
            )
        if self.xtx_pinv is None or np.isnan(self.sigma2):
            return np.full(X.shape[0], np.nan)
        leverage = np.einsum("ij,jk,ik->i", X, self.xtx_pinv, X)
        return np.sqrt(self.sigma2 * (1.0 + np.maximum(leverage, 0.0)))

    def summary(self) -> str:
        """Human-readable coefficient table."""
        names = list(self.feature_names)
        ncoef = self.coef.shape[0]
        if self.intercept:
            names = ["(intercept)"] + names
        while len(names) < ncoef:
            names.append(f"x{len(names)}")
        width = max(len(n) for n in names)
        lines = [f"OLS: n={self.n_obs}  rank={self.rank}  R^2={self.r_squared:.4f}"]
        for name, c, se in zip(names, self.coef, self.std_errors):
            lines.append(f"  {name:<{width}}  {c:+12.6g}  (se {se:.4g})")
        return "\n".join(lines)


def fit_ols(
    X: np.ndarray,
    y: np.ndarray,
    *,
    intercept: bool = True,
    feature_names: tuple[str, ...] | list[str] = (),
    ridge: float = 0.0,
) -> OLSModel:
    """Fit (optionally ridge-regularized) least squares ``y ~ X``.

    Parameters
    ----------
    X:
        ``(n, p)`` design matrix (no intercept column — pass
        ``intercept=True`` to add one).
    y:
        ``(n,)`` response vector.
    intercept:
        Whether to prepend a constant column.
    feature_names:
        Optional labels for the ``p`` feature columns.
    ridge:
        L2 penalty ``lambda >= 0`` on the non-intercept coefficients.
        Implemented by row augmentation (``sqrt(lambda) * I`` pseudo-
        observations), so the same lstsq path and diagnostics apply.
        The intercept is never penalized.

    Returns
    -------
    OLSModel

    Raises
    ------
    ValueError
        If shapes are inconsistent or there are no observations.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X[:, np.newaxis]
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError(f"y shape {y.shape} incompatible with X shape {X.shape}")
    n = X.shape[0]
    if n == 0:
        raise ValueError("cannot fit OLS with zero observations")
    if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
        raise ValueError("X and y must be finite")
    if ridge < 0:
        raise ValueError("ridge must be non-negative")

    A = np.hstack([np.ones((n, 1)), X]) if intercept else X
    if ridge > 0:
        # Row augmentation: sqrt(lambda) on each non-intercept column.
        p_all = A.shape[1]
        penalty = np.sqrt(ridge) * np.eye(p_all)
        if intercept:
            penalty = penalty[1:, :]  # leave the intercept unpenalized
        A_fit = np.vstack([A, penalty])
        y_fit = np.concatenate([y, np.zeros(penalty.shape[0])])
    else:
        A_fit, y_fit = A, y
    coef, _, rank, _ = np.linalg.lstsq(A_fit, y_fit, rcond=None)

    fitted = A @ coef
    resid = y - fitted
    rss = float(resid @ resid)
    if intercept:
        tss = float(np.sum((y - y.mean()) ** 2))
    else:
        tss = float(y @ y)
    r_squared = 1.0 - rss / tss if tss > 0 else (1.0 if rss == 0 else 0.0)

    # Standard errors from (A'A)^+ scaled by residual variance.
    p = A.shape[1]
    dof = n - rank
    std_errors = np.full(p, np.nan)
    sigma2 = float("nan")
    xtx_pinv = None
    if dof > 0:
        sigma2 = rss / dof
        try:
            xtx_pinv = np.linalg.pinv(A.T @ A)
            diag = np.diag(sigma2 * xtx_pinv)
            std_errors = np.sqrt(np.where(diag >= 0, diag, np.nan))
        except np.linalg.LinAlgError:  # pragma: no cover - pinv rarely fails
            pass

    return OLSModel(
        coef=coef,
        intercept=intercept,
        r_squared=r_squared,
        std_errors=std_errors,
        n_obs=n,
        rank=int(rank),
        feature_names=tuple(feature_names),
        sigma2=sigma2,
        xtx_pinv=xtx_pinv,
    )
