"""Partitioning Around Medoids (PAM) on a dissimilarity matrix.

The paper clusters kernels *relationally*: the only input is a pairwise
kernel dissimilarity matrix derived from frontier-order Kendall
correlations (it used the R ``fossil`` package).  PAM is the canonical
relational clustering algorithm — it never needs coordinates, only
pairwise dissimilarities — so it is the faithful substitute here.

The implementation follows Kaufman & Rousseeuw (1990):

* **BUILD** greedily seeds medoids to minimize total within-cluster
  dissimilarity (deterministic).
* **SWAP** iterates over all (medoid, non-medoid) exchanges and applies
  the best strictly-improving swap until a local optimum.

``pam`` optionally accepts ``init_medoids`` to *warm-start* SWAP from a
known-good seeding instead of running BUILD — the leave-one-out driver
seeds every fold from the full-suite clustering, so folds typically
converge in zero or one swap (``train.pam.{builds,swaps}`` telemetry
shows the effect; see ``docs/TRAINING_ENGINE.md``).

:func:`silhouette_score` supports the paper's empirical choice of the
cluster count (five clusters; Section III-B) and our cluster-count
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.telemetry import counter

__all__ = ["KMedoidsResult", "pam", "silhouette_score"]

# Training-engine instrumentation (see docs/OBSERVABILITY.md).
_BUILDS = counter("train.pam.builds")
_SWAPS = counter("train.pam.swaps")


@dataclass(frozen=True)
class KMedoidsResult:
    """Result of a PAM run.

    Attributes
    ----------
    medoids:
        Indices of the ``k`` medoid points.
    labels:
        ``(n,)`` cluster index in ``[0, k)`` for every point; label ``j``
        means "closest to ``medoids[j]``".
    cost:
        Total dissimilarity of points to their assigned medoids.
    n_iter:
        Number of SWAP iterations performed.
    """

    medoids: np.ndarray
    labels: np.ndarray
    cost: float
    n_iter: int

    @property
    def n_clusters(self) -> int:
        """Number of clusters (== number of medoids)."""
        return int(self.medoids.shape[0])


def _check_dissimilarity(D: np.ndarray) -> np.ndarray:
    D = np.asarray(D, dtype=float)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise ValueError(f"dissimilarity matrix must be square, got {D.shape}")
    if not np.all(np.isfinite(D)):
        raise ValueError("dissimilarity matrix must be finite")
    if np.any(D < -1e-12):
        raise ValueError("dissimilarities must be non-negative")
    if not np.allclose(D, D.T, atol=1e-9):
        raise ValueError("dissimilarity matrix must be symmetric")
    return D


def _assign(D: np.ndarray, medoids: np.ndarray) -> tuple[np.ndarray, float]:
    """Label each point with its nearest medoid; return labels and cost.

    Medoids always own themselves, even when another medoid sits at
    zero dissimilarity (ties are otherwise broken by lowest index,
    which could orphan a medoid's cluster).
    """
    sub = D[:, medoids]  # (n, k)
    labels = np.argmin(sub, axis=1)
    labels[medoids] = np.arange(medoids.shape[0])
    cost = float(sub[np.arange(D.shape[0]), labels].sum())
    return labels, cost


def _build(D: np.ndarray, k: int) -> list[int]:
    """BUILD phase: greedy deterministic seeding."""
    # First medoid: point minimizing total dissimilarity to all others.
    first = int(np.argmin(D.sum(axis=1)))
    medoids = [first]
    nearest = D[:, first].copy()  # distance to nearest chosen medoid
    while len(medoids) < k:
        # Gain per candidate: total reduction in nearest-medoid distance
        # if that point were added.  Chosen medoids gain exactly zero and
        # are masked out; ties break to the lowest candidate index.
        gains = np.maximum(nearest[:, None] - D, 0.0).sum(axis=0)
        gains[medoids] = -np.inf
        best_j = int(np.argmax(gains))
        medoids.append(best_j)
        nearest = np.minimum(nearest, D[:, best_j])
    return medoids


def pam(
    D: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    init_medoids: Sequence[int] | np.ndarray | None = None,
) -> KMedoidsResult:
    """Cluster ``n`` points into ``k`` groups given dissimilarities ``D``.

    Parameters
    ----------
    D:
        ``(n, n)`` symmetric non-negative dissimilarity matrix.
    k:
        Number of clusters, ``1 <= k <= n``.
    max_iter:
        Safety bound on SWAP iterations (PAM converges long before this
        for the problem sizes in this package).
    init_medoids:
        Optional ``k`` distinct point indices to seed SWAP from,
        skipping the BUILD phase.  SWAP still runs to a local optimum,
        so any seeding yields a valid clustering; a seeding near the
        optimum (e.g. the previous clustering of a slightly smaller
        point set) converges in very few swaps.

    Returns
    -------
    KMedoidsResult
    """
    D = _check_dissimilarity(D)
    n = D.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for n={n} points")

    if init_medoids is None:
        medoids = np.array(_build(D, k), dtype=int)
        _BUILDS.inc()
    else:
        medoids = np.array(init_medoids, dtype=int)
        if medoids.shape != (k,):
            raise ValueError(
                f"init_medoids must supply exactly k={k} indices, "
                f"got shape {medoids.shape}"
            )
        if np.unique(medoids).shape[0] != k:
            raise ValueError("init_medoids must be distinct")
        if medoids.min() < 0 or medoids.max() >= n:
            raise ValueError(f"init_medoids out of range for n={n} points")
    labels, cost = _assign(D, medoids)

    n_iter = 0
    n_swaps = 0
    for n_iter in range(1, max_iter + 1):
        # Evaluate every (medoid mi, candidate h) exchange at once.
        # Removing medoid mi leaves each point with its nearest remaining
        # medoid — d1 if mi was not its owner, else d2 (second nearest) —
        # and adding h offers D[:, h]; the trial cost is the sum of the
        # elementwise minimum.  With k == 1, d2 is +inf so the candidate
        # column alone decides.
        sub = D[:, medoids]  # (n, k)
        owner = np.argmin(sub, axis=1)
        d1 = sub[np.arange(n), owner]
        if medoids.shape[0] > 1:
            d2 = np.partition(sub, 1, axis=1)[:, 1]
        else:
            d2 = np.full(n, np.inf)
        # base[mi, i]: distance to nearest medoid once mi is removed.
        base = np.where(owner[None, :] == np.arange(medoids.shape[0])[:, None], d2, d1)
        trial_costs = np.minimum(base[:, :, None], D[None, :, :]).sum(axis=1)  # (k, n)
        deltas = cost - trial_costs
        deltas[:, medoids] = -np.inf  # existing medoids are not candidates
        flat = int(np.argmax(deltas))  # ties break to first (mi, h) in order
        if deltas.flat[flat] <= 1e-12:
            # No strictly-improving swap: local optimum.  (A looser
            # threshold would accept zero-delta swaps and cycle through
            # equal-cost medoid sets until max_iter.)
            break
        mi, h = divmod(flat, n)
        medoids[mi] = h
        n_swaps += 1
        labels, cost = _assign(D, medoids)
    _SWAPS.inc(n_swaps)
    return KMedoidsResult(medoids=medoids, labels=labels, cost=cost, n_iter=n_iter)


def silhouette_score(D: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette width for a relational clustering.

    For each point ``i`` with cluster ``C``: ``a(i)`` is its mean
    dissimilarity to other members of ``C``; ``b(i)`` is the minimum over
    other clusters of the mean dissimilarity to that cluster; the
    silhouette is ``(b - a) / max(a, b)``.  Singleton clusters contribute
    0 (Kaufman & Rousseeuw convention).

    Returns ``nan`` when there are fewer than two clusters.
    """
    D = _check_dissimilarity(D)
    labels = np.asarray(labels)
    if labels.shape[0] != D.shape[0]:
        raise ValueError("labels length must match matrix size")
    uniq = np.unique(labels)
    if uniq.shape[0] < 2:
        return float("nan")

    n = D.shape[0]
    sil = np.zeros(n)
    for i in range(n):
        own = labels == labels[i]
        own_count = int(own.sum())
        if own_count <= 1:
            sil[i] = 0.0
            continue
        a = float(D[i, own].sum() / (own_count - 1))  # exclude self (D[i,i]=0)
        b = np.inf
        for c in uniq:
            if c == labels[i]:
                continue
            mask = labels == c
            b = min(b, float(D[i, mask].mean()))
        denom = max(a, b)
        sil[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(sil.mean())
