"""CART classification tree (Gini impurity).

The paper trains "a classification tree [36]" (Breiman et al., CART) on
performance-counter and power data gathered at the two sample
configurations, and uses it online to assign each new kernel to one of
the offline clusters (Section III-B, Figure 3).  This is a compact,
deterministic implementation of axis-aligned binary splitting:

* splits minimize weighted Gini impurity;
* candidate thresholds are midpoints between consecutive distinct sorted
  feature values;
* stopping: pure node, ``max_depth``, ``min_samples_split``,
  ``min_samples_leaf``, or no impurity-reducing split;
* ties are broken by lowest feature index, then lowest threshold, so the
  fit is fully deterministic.

Split search is fully vectorized (``docs/TRAINING_ENGINE.md``):
:meth:`ClassificationTree.fit` stably argsorts every feature column
*once* into an index matrix, recursion partitions that matrix (a stable
partition of a stable sort is the stable sort of the subset, so
per-node re-sorting is never needed), and :meth:`_best_split` scores
every candidate threshold of every feature in one numpy pass —
cumulative one-hot class counts down the sorted order give the left/
right Gini of all split points at once.  The arithmetic mirrors the
scalar loop operation for operation, so chosen splits are bit-identical
to the retained reference implementation
(:func:`_best_split_reference`), which the equivalence suite pins.

:meth:`ClassificationTree.render` produces a text rendering in the spirit
of the paper's Figure 3 (feature comparisons at internal nodes, cluster
ids at leaves), used by the Figure 3 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry import counter

__all__ = ["ClassificationTree", "TreeNode"]

# Training-engine instrumentation: nodes grown and splits applied
# across all tree fits (see docs/OBSERVABILITY.md).
_NODES = counter("train.cart.nodes")
_SPLITS = counter("train.cart.splits")


@dataclass
class TreeNode:
    """A node of the fitted tree.

    Internal nodes carry ``feature``/``threshold`` and children; leaves
    carry ``prediction``.  ``class_counts`` is retained on every node for
    introspection and confidence reporting.
    """

    depth: int
    n_samples: int
    class_counts: np.ndarray
    prediction: int
    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node carries a prediction (no split)."""
        return self.feature is None

    @property
    def purity(self) -> float:
        """Fraction of samples at this node belonging to the majority class."""
        total = self.class_counts.sum()
        return float(self.class_counts.max() / total) if total else 0.0


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    # Sum of squared *integer* counts before the single division: integer
    # partial sums are exact in float64, so the result is identical under
    # any class ordering — Gini must be label-permutation invariant to
    # the last bit or tied splits break the tree's permutation covariance
    # (pinned by the CART property suite).
    ss = float(np.sum(counts * counts))
    return float(1.0 - ss / (total * total))


def _best_split_reference(
    X: np.ndarray,
    y: np.ndarray,
    counts: np.ndarray,
    *,
    n_classes: int,
    min_samples_leaf: int = 1,
) -> tuple[int, float] | None:
    """Reference per-sample split search (the pre-vectorization loop).

    Retained verbatim as the behavioural oracle for
    :meth:`ClassificationTree._best_split`: the equivalence suite runs
    both over random and adversarially tied datasets and requires the
    identical ``(feature, threshold)`` choice, including the
    lexicographic ``(gini, feature, threshold)`` tie-break.  Not used
    on any production path.
    """
    n = y.shape[0]
    parent_gini = _gini(counts)
    best: tuple[float, int, float] | None = None  # (gini, feature, thr)

    for f in range(X.shape[1]):
        order = np.argsort(X[:, f], kind="stable")
        xs, ys = X[order, f], y[order]
        left_counts = np.zeros(n_classes)
        right_counts = counts.astype(float).copy()
        for i in range(n - 1):
            c = ys[i]
            left_counts[c] += 1
            right_counts[c] -= 1
            if xs[i] == xs[i + 1]:
                continue  # cannot split between equal values
            n_left = i + 1
            n_right = n - n_left
            if n_left < min_samples_leaf or n_right < min_samples_leaf:
                continue
            g = (n_left * _gini(left_counts) + n_right * _gini(right_counts)) / n
            thr = 0.5 * (xs[i] + xs[i + 1])
            key = (g, f, thr)
            if best is None or key < best:
                best = key

    if best is None or best[0] >= parent_gini - 1e-12:
        return None
    return best[1], best[2]


class ClassificationTree:
    """Axis-aligned binary classification tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root is depth 0).
    min_samples_split:
        Minimum samples required at a node to consider splitting.
    min_samples_leaf:
        Minimum samples each child must retain for a split to be valid.
    feature_names:
        Optional labels used by :meth:`render` (defaults to ``x0..xp``).

    Notes
    -----
    Class labels may be arbitrary hashables; internally they are encoded
    to ``0..K-1`` and decoded on prediction.
    """

    def __init__(
        self,
        *,
        max_depth: int = 6,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        feature_names: tuple[str, ...] | list[str] = (),
    ) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.feature_names = tuple(feature_names)
        self.root: TreeNode | None = None
        self.classes_: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ClassificationTree":
        """Fit the tree on ``(n, p)`` features ``X`` and labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on zero samples")
        if not np.all(np.isfinite(X)):
            raise ValueError("X must be finite")

        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self._n_classes = self.classes_.shape[0]
        self._n_features = X.shape[1]
        self._X = X
        self._y = y_enc
        # Presort every feature column once; recursion partitions this
        # index matrix instead of re-sorting per node.
        idx_sorted = np.argsort(X, axis=0, kind="stable")
        self._grown_nodes = 0
        self._grown_splits = 0
        self.root = self._grow(idx_sorted, depth=0)
        _NODES.inc(self._grown_nodes)
        _SPLITS.inc(self._grown_splits)
        del self._X, self._y
        return self

    def _grow(self, idx_sorted: np.ndarray, depth: int) -> TreeNode:
        """Grow one subtree over the samples in ``idx_sorted`` — an
        ``(m, p)`` matrix whose column ``f`` lists the node's sample
        indices in stable-sorted order of feature ``f``."""
        y_here = self._y[idx_sorted[:, 0]]
        counts = np.bincount(y_here, minlength=self._n_classes)
        self._grown_nodes += 1
        node = TreeNode(
            depth=depth,
            n_samples=idx_sorted.shape[0],
            class_counts=counts,
            prediction=self._majority(idx_sorted[:, 0], counts),
        )
        if (
            depth >= self.max_depth
            or idx_sorted.shape[0] < self.min_samples_split
            or _gini(counts) == 0.0
        ):
            return node

        split = self._best_split(idx_sorted, counts)
        if split is None:
            return node
        feature, threshold = split
        self._grown_splits += 1
        node.feature = feature
        node.threshold = threshold
        # Stable partition of every presorted column: each column keeps
        # exactly the left (resp. right) samples in sorted order.
        left_member = np.zeros(self._X.shape[0], dtype=bool)
        col = idx_sorted[:, feature]
        left_member[col[self._X[col, feature] <= threshold]] = True
        in_left = left_member[idx_sorted]  # (m, p)
        m_left = int(in_left[:, 0].sum())
        p = idx_sorted.shape[1]
        idx_left = idx_sorted.T[in_left.T].reshape(p, m_left).T
        idx_right = idx_sorted.T[~in_left.T].reshape(
            p, idx_sorted.shape[0] - m_left
        ).T
        node.left = self._grow(idx_left, depth + 1)
        node.right = self._grow(idx_right, depth + 1)
        return node

    def _majority(self, samples: np.ndarray, counts: np.ndarray) -> int:
        """The node's predicted class: majority, with ties broken by the
        class of the earliest (lowest-index) sample among the tied
        classes.

        The tie-break is *label-permutation covariant*: renumbering the
        classes renumbers the prediction identically, so a clustering
        that differs only by cluster-id permutation (e.g. a warm-started
        PAM run that found the same partition in a different medoid
        order) yields a tree predicting the same partition clusters.
        Breaking ties by lowest class id would make tied leaves depend
        on the arbitrary numbering.
        """
        tied = np.flatnonzero(counts == counts.max())
        if tied.size == 1:
            return int(tied[0])
        eligible = samples[np.isin(self._y[samples], tied)]
        return int(self._y[eligible.min()])

    def _best_split(
        self, idx_sorted: np.ndarray, counts: np.ndarray
    ) -> tuple[int, float] | None:
        """Vectorized exhaustive search for the impurity-minimizing
        ``(feature, threshold)`` over the presorted index matrix.

        One numpy pass scores every candidate boundary of every feature:
        cumulative one-hot class counts down each sorted column give all
        left/right class distributions at once, and the weighted Gini is
        evaluated for the whole ``(m-1, p)`` candidate grid.  Each
        scalar operation matches :func:`_best_split_reference` exactly
        (integer-valued counts, identical division/summation order), so
        the selected split — including the lexicographic
        ``(gini, feature, threshold)`` tie-break — is bit-identical.
        """
        m, p = idx_sorted.shape
        if m < 2:
            return None
        parent_gini = _gini(counts)

        XS = self._X[idx_sorted, np.arange(p)[np.newaxis, :]]  # (m, p) sorted values
        YS = self._y[idx_sorted]  # (m, p) labels in that order
        # left[i, f, c]: samples of class c among the first i+1 of column f.
        onehot = YS[:, :, np.newaxis] == np.arange(self._n_classes)
        left = np.cumsum(onehot, axis=0, dtype=float)[:-1]  # (m-1, p, K)
        right = counts.astype(float) - left
        n_left = np.arange(1, m, dtype=float)[:, np.newaxis]  # (m-1, 1)
        n_right = float(m) - n_left
        # Square-then-sum the integer counts (exact partial sums) before
        # the single division — the same label-permutation-invariant
        # arithmetic as _gini, and bit-identical to the reference loop.
        gini_left = 1.0 - np.sum(left * left, axis=2) / (n_left * n_left)
        gini_right = 1.0 - np.sum(right * right, axis=2) / (n_right * n_right)
        weighted = (n_left * gini_left + n_right * gini_right) / m  # (m-1, p)

        valid = XS[:-1] != XS[1:]  # cannot split between equal values
        if self.min_samples_leaf > 1:
            leaf_ok = (n_left >= self.min_samples_leaf) & (
                n_right >= self.min_samples_leaf
            )
            valid &= leaf_ok
        if not valid.any():
            return None
        scores = np.where(valid, weighted, np.inf)

        # Per feature: argmin takes the first (= lowest-threshold)
        # minimizer, matching the reference loop's tie-break; across
        # features a strict < keeps the lowest feature index on ties.
        best_rows = np.argmin(scores, axis=0)  # (p,)
        best: tuple[float, int, float] | None = None
        for f in range(p):
            g = scores[best_rows[f], f]
            if np.isinf(g):
                continue
            if best is None or g < best[0]:
                i = best_rows[f]
                best = (float(g), f, float(0.5 * (XS[i, f] + XS[i + 1, f])))

        if best is None or best[0] >= parent_gini - 1e-12:
            return None
        return best[1], best[2]

    # -- inference ---------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict class labels for ``(n, p)`` (or a single ``(p,)``) input."""
        if self.root is None or self.classes_ is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[np.newaxis, :]
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        out = np.empty(X.shape[0], dtype=int)
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        decoded = self.classes_[out]
        return decoded[0] if single else decoded

    def depth(self) -> int:
        """Maximum depth of the fitted tree (root = 0)."""

        def _d(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return node.depth if node else 0
            return max(_d(node.left), _d(node.right))

        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return _d(self.root)

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""

        def _n(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return _n(node.left) + _n(node.right)

        if self.root is None:
            raise RuntimeError("tree is not fitted")
        return _n(self.root)

    # -- pruning -----------------------------------------------------------

    def prune(self, alpha: float) -> "ClassificationTree":
        """Weakest-link cost-complexity pruning (Breiman et al., ch. 3).

        Collapses every internal node whose per-leaf training-error
        reduction is worth less than ``alpha`` errors: a subtree rooted
        at ``t`` survives only if

        .. math::  g(t) = \\frac{R(t) - R(T_t)}{|leaves(T_t)| - 1} > \\alpha

        where :math:`R` counts misclassified training samples.  Applied
        bottom-up until stable; ``alpha = 0`` removes only splits that
        buy no training accuracy at all.  Returns ``self``.
        """
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")

        def leaf_errors(node: TreeNode) -> int:
            return node.n_samples - int(node.class_counts.max())

        def subtree_stats(node: TreeNode) -> tuple[int, int]:
            """(misclassified by subtree's leaves, number of leaves)."""
            if node.is_leaf:
                return leaf_errors(node), 1
            le, ln = subtree_stats(node.left)
            re, rn = subtree_stats(node.right)
            return le + re, ln + rn

        def walk(node: TreeNode) -> None:
            if node.is_leaf:
                return
            walk(node.left)
            walk(node.right)
            sub_err, n_leaves = subtree_stats(node)
            if n_leaves <= 1:
                return
            g = (leaf_errors(node) - sub_err) / (n_leaves - 1)
            if g <= alpha:
                node.feature = None
                node.threshold = None
                node.left = None
                node.right = None

        walk(self.root)
        return self

    # -- reporting ---------------------------------------------------------

    def _feature_name(self, f: int) -> str:
        if f < len(self.feature_names):
            return self.feature_names[f]
        return f"x{f}"

    def render(self) -> str:
        """Text rendering in the style of the paper's Figure 3."""
        if self.root is None or self.classes_ is None:
            raise RuntimeError("tree is not fitted")
        lines: list[str] = []

        def _walk(node: TreeNode, prefix: str, tag: str) -> None:
            if node.is_leaf:
                label = self.classes_[node.prediction]
                lines.append(
                    f"{prefix}{tag}cluster {label}  "
                    f"(n={node.n_samples}, purity={node.purity:.2f})"
                )
                return
            name = self._feature_name(node.feature)
            lines.append(f"{prefix}{tag}{name} <= {node.threshold:.4g} ?")
            child_prefix = prefix + ("    " if tag else "")
            _walk(node.left, child_prefix, "yes: ")
            _walk(node.right, child_prefix, "no:  ")

        _walk(self.root, "", "")
        return "\n".join(lines)
