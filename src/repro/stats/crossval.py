"""Cross-validation splitting.

The paper's evaluation is leave-one-*benchmark*-out (Section V-C): for
every benchmark, a model is trained on the kernels of all *other*
benchmarks and validated on the held-out benchmark's kernels.  This is
leave-one-group-out CV with the benchmark name as the group key.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

__all__ = ["leave_one_group_out"]


def leave_one_group_out(
    groups: Sequence[Hashable],
) -> Iterator[tuple[Hashable, list[int], list[int]]]:
    """Yield ``(held_out_group, train_indices, test_indices)`` per group.

    Groups are visited in order of first appearance, so the iteration
    order is deterministic.

    Parameters
    ----------
    groups:
        Group key for each of the ``n`` items (e.g. the benchmark each
        kernel belongs to).

    Yields
    ------
    tuple
        The held-out group key, indices of training items (all other
        groups), and indices of test items (the held-out group).

    Raises
    ------
    ValueError
        If there are fewer than two distinct groups (no split possible).
    """
    order: list[Hashable] = []
    seen: set[Hashable] = set()
    for g in groups:
        if g not in seen:
            seen.add(g)
            order.append(g)
    if len(order) < 2:
        raise ValueError("need at least two distinct groups for leave-one-group-out")

    for held_out in order:
        train = [i for i, g in enumerate(groups) if g != held_out]
        test = [i for i, g in enumerate(groups) if g == held_out]
        yield held_out, train, test
