"""Application-level runtime — the paper's "foundation for dynamic
scheduling" (Section III-D) realized end to end.

:class:`Application` models a benchmark as an ordered kernel sequence
invoked once per timestep; :class:`AdaptiveRuntime` executes it under a
(possibly time-varying) power cap with the paper's online protocol —
first two invocations on the sample configurations, model-scheduled
configurations afterwards, frontier-lookup-only reaction to cap
changes.  :class:`StaticRuntime` and :class:`OracleRuntime` are the
comparison baselines; :class:`ApplicationTrace` records what ran.
"""

from repro.runtime.adaptive import (
    AdaptiveRuntime,
    CapSchedule,
    OracleRuntime,
    StaticRuntime,
)
from repro.runtime.application import Application
from repro.runtime.energy import EnergySchedule, optimize_energy_budget
from repro.runtime.trace import ApplicationTrace, KernelExecution

__all__ = [
    "AdaptiveRuntime",
    "Application",
    "ApplicationTrace",
    "CapSchedule",
    "EnergySchedule",
    "KernelExecution",
    "OracleRuntime",
    "StaticRuntime",
    "optimize_energy_budget",
]
