"""Execution traces: what an application run actually did.

The paper's profiling library keeps "a history of performance and power
measurements ... accessible to the application or runtime" (Section
III-D).  :class:`ApplicationTrace` is the runtime-level counterpart:
one record per kernel invocation, with aggregate views (total time,
energy, cap-violation rate) used by the application-level experiments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TextIO

from repro.constants import respects_cap
from repro.hardware.config import Configuration, Device

__all__ = ["KernelExecution", "ApplicationTrace"]


@dataclass(frozen=True)
class KernelExecution:
    """One kernel invocation inside an application run.

    ``phase`` records the online-protocol stage this invocation served:
    ``"sample-cpu"`` / ``"sample-gpu"`` for the first two iterations,
    ``"scheduled"`` afterwards.
    """

    timestep: int
    kernel_uid: str
    config: Configuration
    time_s: float
    power_w: float
    power_cap_w: float
    phase: str

    @property
    def energy_j(self) -> float:
        """Energy of this invocation (joules)."""
        return self.power_w * self.time_s

    @property
    def under_cap(self) -> bool:
        """Whether this invocation's power respected its cap (shared
        :data:`repro.constants.CAP_EPSILON` tolerance)."""
        return respects_cap(self.power_w, self.power_cap_w)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "timestep": self.timestep,
            "kernel_uid": self.kernel_uid,
            "config": {
                "device": self.config.device.value,
                "cpu_freq_ghz": self.config.cpu_freq_ghz,
                "n_threads": self.config.n_threads,
                "gpu_freq_ghz": self.config.gpu_freq_ghz,
            },
            "time_s": self.time_s,
            "power_w": self.power_w,
            "power_cap_w": self.power_cap_w,
            "phase": self.phase,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "KernelExecution":
        """Rebuild an execution from :meth:`to_dict` output."""
        c = d["config"]
        return cls(
            timestep=d["timestep"],
            kernel_uid=d["kernel_uid"],
            config=Configuration(
                device=Device(c["device"]),
                cpu_freq_ghz=c["cpu_freq_ghz"],
                n_threads=c["n_threads"],
                gpu_freq_ghz=c["gpu_freq_ghz"],
            ),
            time_s=d["time_s"],
            power_w=d["power_w"],
            power_cap_w=d["power_cap_w"],
            phase=d["phase"],
        )


@dataclass
class ApplicationTrace:
    """All invocations of one application run, with aggregates."""

    application: str
    executions: list[KernelExecution] = field(default_factory=list)

    def record(self, execution: KernelExecution) -> None:
        """Append one invocation to the trace."""
        self.executions.append(execution)

    def __len__(self) -> int:
        return len(self.executions)

    # -- serialization -----------------------------------------------------------

    def to_jsonl(self, path: str | Path | TextIO) -> None:
        """Write the trace as JSON lines: a header line
        ``{"application": ...}`` followed by one line per execution, in
        execution order (inverse of :meth:`from_jsonl`)."""
        lines = [json.dumps({"application": self.application}, sort_keys=True)]
        lines.extend(
            json.dumps(e.to_dict(), sort_keys=True) for e in self.executions
        )
        payload = "\n".join(lines) + "\n"
        if hasattr(path, "write"):
            path.write(payload)
        else:
            Path(path).write_text(payload)

    @classmethod
    def from_jsonl(cls, path: str | Path | TextIO) -> "ApplicationTrace":
        """Load a trace written by :meth:`to_jsonl`."""
        if hasattr(path, "read"):
            text = path.read()
        else:
            text = Path(path).read_text()
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty trace file")
        header = json.loads(lines[0])
        if "application" not in header:
            raise ValueError("trace file missing application header line")
        trace = cls(application=header["application"])
        for line in lines[1:]:
            trace.record(KernelExecution.from_dict(json.loads(line)))
        return trace

    # -- aggregates ------------------------------------------------------------

    @property
    def total_time_s(self) -> float:
        """Wall time of the run (kernels execute sequentially)."""
        return sum(e.time_s for e in self.executions)

    @property
    def total_energy_j(self) -> float:
        """Total energy of the run (joules)."""
        return sum(e.energy_j for e in self.executions)

    @property
    def mean_power_w(self) -> float:
        """Time-weighted average power over the run."""
        t = self.total_time_s
        return self.total_energy_j / t if t > 0 else float("nan")

    @property
    def violation_rate(self) -> float:
        """Fraction of invocations whose power exceeded the cap."""
        if not self.executions:
            return float("nan")
        over = sum(not e.under_cap for e in self.executions)
        return over / len(self.executions)

    def violation_time_fraction(self) -> float:
        """Fraction of wall time spent over the cap (a stricter view:
        long over-cap kernels matter more than short ones)."""
        t = self.total_time_s
        if t == 0:
            return float("nan")
        over = sum(e.time_s for e in self.executions if not e.under_cap)
        return over / t

    def per_kernel_time(self) -> dict[str, float]:
        """Total execution time per kernel uid."""
        out: dict[str, float] = {}
        for e in self.executions:
            out[e.kernel_uid] = out.get(e.kernel_uid, 0.0) + e.time_s
        return out

    def timesteps(self) -> int:
        """Number of timesteps executed."""
        if not self.executions:
            return 0
        return max(e.timestep for e in self.executions) + 1

    def for_timestep(self, timestep: int) -> list[KernelExecution]:
        """All invocations of one timestep, in execution order."""
        return [e for e in self.executions if e.timestep == timestep]

    def speedup_vs(self, other: "ApplicationTrace") -> float:
        """Wall-time speedup of this run relative to ``other``."""
        return other.total_time_s / self.total_time_s

    def summary(self) -> str:
        """One-paragraph human-readable account of the run."""
        return (
            f"{self.application}: {self.timesteps()} timesteps, "
            f"{len(self.executions)} kernel invocations, "
            f"{self.total_time_s:.2f} s, {self.total_energy_j:.0f} J, "
            f"mean {self.mean_power_w:.1f} W, "
            f"{100 * self.violation_rate:.1f}% invocations over cap"
        )

    def render_timeline(self, *, width: int = 60) -> str:
        """Text timeline of the run: one row per timestep showing the
        cap, the devices used, time, average power, and violations.

        ``#`` marks time on the CPU, ``%`` time on the GPU; a trailing
        ``!`` flags a timestep containing an over-cap invocation.
        """
        steps = self.timesteps()
        if steps == 0:
            return f"{self.application}: (empty trace)"
        rows = [f"{self.application} timeline ({steps} timesteps):"]
        max_t = max(
            sum(e.time_s for e in self.for_timestep(t)) for t in range(steps)
        )
        for t in range(steps):
            execs = self.for_timestep(t)
            total_t = sum(e.time_s for e in execs)
            cpu_t = sum(e.time_s for e in execs if not e.config.is_gpu)
            energy = sum(e.energy_j for e in execs)
            cap = execs[0].power_cap_w
            over = any(not e.under_cap for e in execs)
            bar_len = max(1, int(round(total_t / max_t * width)))
            cpu_len = int(round(bar_len * (cpu_t / total_t))) if total_t else 0
            bar = "#" * cpu_len + "%" * (bar_len - cpu_len)
            rows.append(
                f"  t{t:<3} cap {cap:5.1f}W  {total_t:7.3f}s "
                f"{energy / total_t if total_t else 0:5.1f}W "
                f"|{bar}{'!' if over else ''}"
            )
        rows.append("  (#: CPU time, %: GPU time, !: over-cap invocation)")
        return "\n".join(rows)
