"""Applications: ordered kernel sequences executed per timestep.

The paper's benchmarks are real applications whose kernels "execute
sequentially" (Section III-A): each simulation timestep invokes every
kernel once, in order.  An :class:`Application` captures that structure
so the runtime can execute whole programs, not isolated kernels —
including the paper's protocol detail that a kernel's first two
*invocations* double as its sample-configuration runs (Section IV-C:
"the sample configuration iterations are part of normal application
execution").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.kernel import Kernel
from repro.workloads.suite import Suite

__all__ = ["Application"]


@dataclass(frozen=True)
class Application:
    """One application: a named, ordered sequence of kernels.

    Attributes
    ----------
    name:
        Application name (e.g. ``"LULESH Small"``).
    kernels:
        The kernels invoked, in order, once per timestep.
    """

    name: str
    kernels: tuple[Kernel, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application name must be non-empty")
        if not self.kernels:
            raise ValueError("application needs at least one kernel")
        uids = [k.uid for k in self.kernels]
        if len(set(uids)) != len(uids):
            raise ValueError("duplicate kernels in application sequence")

    def __len__(self) -> int:
        return len(self.kernels)

    @staticmethod
    def from_suite(suite: Suite, group: str) -> "Application":
        """Build the application for one benchmark/input group of the
        suite (e.g. ``"LULESH Small"``), kernels in suite order."""
        return Application(name=group, kernels=tuple(suite.for_group(group)))
