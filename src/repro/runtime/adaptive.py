"""The adaptive runtime: whole applications under (dynamic) power caps.

The paper positions its profiling library as "a foundation for dynamic
scheduling" (Section III-D) and notes that predicted Pareto frontiers
make the system "adaptable to dynamic power constraints" (Section
III-C).  :class:`AdaptiveRuntime` realizes that runtime:

* **timestep loop** — each timestep invokes every application kernel
  once, in order (Section III-A's sequential-kernel assumption);
* **online protocol** — a kernel's first invocation runs on the CPU
  sample configuration, its second on the GPU sample configuration
  (Table II); both are ordinary application work whose time and energy
  are charged to the run (Section IV-C).  After the second invocation
  the kernel is classified and its whole-space prediction cached;
* **scheduling** — from the third invocation on, the kernel runs on the
  configuration the scheduler picks from its cached prediction for the
  *current* cap.  Cap changes between timesteps cost one frontier
  lookup per kernel — no new measurements;
* **re-sampling on input change** — Section VI observes the system
  "does not automatically differentiate between invocations of the same
  kernel with distinct data inputs"; our kernels are keyed by
  (benchmark, input, name), so a changed input is a new kernel uid and
  automatically re-enters the sample protocol.

Baselines for comparison: :class:`StaticRuntime` (one fixed
configuration for everything) and :class:`OracleRuntime` (ground-truth
best configuration per kernel per cap).
"""

from __future__ import annotations

import logging
from typing import Callable

from repro.constants import respects_cap
from repro.core.model import AdaptiveModel
from repro.core.predictor import KernelPrediction
from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE
from repro.core.scheduler import Scheduler
from repro.faults import SampleRunError, measurement_is_finite, sanitize_measurement
from repro.hardware.config import Configuration
from repro.hardware.rapl import FrequencyLimiter
from repro.methods.oracle import Oracle
from repro.profiling.library import ProfilingLibrary
from repro.profiling.records import KernelProfile
from repro.runtime.application import Application
from repro.runtime.trace import ApplicationTrace, KernelExecution
from repro.telemetry import counter, get_logger, log_event, trace_span
from repro.workloads.kernel import Kernel

__all__ = ["AdaptiveRuntime", "StaticRuntime", "OracleRuntime", "CapSchedule"]

_log = get_logger(__name__)

# Runtime-level accounting (docs/OBSERVABILITY.md): one invocation per
# kernel execution in the timestep loop; violations judge measured power
# against the timestep's cap with the shared CAP_EPSILON tolerance.
_INVOCATIONS = counter("runtime.invocations")
_CAP_VIOLATIONS = counter("runtime.cap_violations")

# Degradation accounting (docs/ROBUSTNESS.md): retries after failed
# invocations, invocations abandoned after the retry budget, executions
# whose reported P-state differed from the requested one, and sample
# measurements sanitized before classification.
_RETRIES = counter("faults.retries")
_FAILED_INVOCATIONS = counter("faults.failed_invocations")
_STUCK_EXECUTIONS = counter("faults.stuck_executions")
_CORRUPT_SAMPLES = counter("faults.corrupt_samples")

#: Default retry budget and capped-exponential-backoff shape for failed
#: kernel invocations (simulated wall-clock seconds, charged to the
#: application trace).
DEFAULT_RETRY_LIMIT: int = 3
DEFAULT_BACKOFF_BASE_S: float = 0.01
DEFAULT_BACKOFF_CAP_S: float = 0.08

#: A power cap per timestep: constant, or a function of the timestep.
CapSchedule = float | Callable[[int], float]


def _cap_at(cap: CapSchedule, timestep: int) -> float:
    value = cap(timestep) if callable(cap) else cap
    if value <= 0:
        raise ValueError(f"power cap at timestep {timestep} must be positive")
    return float(value)


class AdaptiveRuntime:
    """Model-driven application runtime (the paper's system, end to end).

    Parameters
    ----------
    model:
        A trained :class:`AdaptiveModel` (train it without the
        application's benchmark for honest evaluation).
    library:
        Profiling library executing and recording every invocation.
    scheduler:
        Selection policy (defaults to maximize-performance).
    risk_averse:
        Use prediction-confidence bounds when scheduling (Section VI).
    frequency_limiter:
        Combine the model with RAPL-style frequency limiting — the
        paper's winning ``Model+FL`` method (Section V-A) at application
        level.  After the model commits a kernel to a device/thread
        configuration, the limiter walks frequency down if measured
        power still violates the cap; the refined configuration is
        remembered per (kernel, cap) so the limiter's step-down runs
        pay off across timesteps.
    retry_limit, backoff_base_s, backoff_cap_s:
        Graceful-degradation knobs for failed invocations (injected
        :class:`repro.faults.SampleRunError`): up to ``retry_limit``
        retries with capped exponential backoff, the wait charged to
        the trace; an invocation that exhausts the budget is recorded
        with ``phase="failed"`` and zero power.
    quarantine_stuck:
        When a *scheduled* execution reports a different P-state than
        requested (stuck/throttled hardware), quarantine the requested
        configuration in the scheduler so later selections re-select
        from the surviving frontier.
    """

    def __init__(
        self,
        model: AdaptiveModel,
        library: ProfilingLibrary,
        *,
        scheduler: Scheduler | None = None,
        risk_averse: bool = False,
        frequency_limiter: bool = False,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        quarantine_stuck: bool = True,
    ) -> None:
        if retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")
        self.model = model
        self.library = library
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.risk_averse = risk_averse
        self.retry_limit = retry_limit
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.quarantine_stuck = quarantine_stuck
        self._predictions: dict[str, KernelPrediction] = {}
        self._limiter = (
            FrequencyLimiter(library.apu) if frequency_limiter else None
        )
        self._limited: dict[tuple[str, float], Configuration] = {}

    def run(
        self,
        application: Application,
        n_timesteps: int,
        power_cap_w: CapSchedule,
    ) -> ApplicationTrace:
        """Execute ``n_timesteps`` of the application under the cap
        schedule and return the full trace."""
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        trace = ApplicationTrace(application=application.name)
        for t in range(n_timesteps):
            cap = _cap_at(power_cap_w, t)
            for kernel in application.kernels:
                trace.record(self._invoke(kernel, t, cap))
        return trace

    def _invoke(self, kernel: Kernel, timestep: int, cap: float) -> KernelExecution:
        seen = self.library.database.iterations(kernel.uid)
        if seen == 0:
            cfg, phase = CPU_SAMPLE, "sample-cpu"
        elif seen == 1:
            cfg, phase = GPU_SAMPLE, "sample-gpu"
        else:
            prediction = self._prediction_for(kernel)
            decision = self.scheduler.select(
                prediction, cap, risk_averse=self.risk_averse
            )
            cfg, phase = decision.config, "scheduled"
            if self._limiter is not None:
                key = (kernel.uid, cap)
                if key not in self._limited:
                    result = self._limiter.limit(kernel, cfg, cap)
                    self._limited[key] = result.final_config
                cfg = self._limited[key]
        profile, wait_s = self._profile_with_retry(kernel, cfg)
        if profile is None:
            # Retry budget exhausted: record the lost invocation (zero
            # work, backoff time charged) and move on — the application
            # keeps running.
            _FAILED_INVOCATIONS.inc()
            log_event(
                _log,
                logging.WARNING,
                "runtime-invocation-failed",
                kernel=kernel.uid,
                timestep=timestep,
                phase=phase,
                config=cfg.label(),
                retries=self.retry_limit,
                wait_s=round(wait_s, 4),
            )
            return KernelExecution(
                timestep=timestep,
                kernel_uid=kernel.uid,
                config=cfg,
                time_s=wait_s,
                power_w=0.0,
                power_cap_w=cap,
                phase="failed",
            )
        m = profile.measurement
        executed = m.config
        if executed != cfg:
            # The hardware reports a different P-state than requested:
            # stuck or thermally throttled.
            self._note_stuck(kernel, cfg, executed, phase)
        _INVOCATIONS.inc()
        if not respects_cap(m.total_power_w, cap):
            _CAP_VIOLATIONS.inc()
            log_event(
                _log,
                logging.DEBUG,
                "runtime-cap-violation",
                kernel=kernel.uid,
                timestep=timestep,
                phase=phase,
                cap_w=round(cap, 3),
                power_w=round(m.total_power_w, 3),
                config=executed.label(),
            )
        return KernelExecution(
            timestep=timestep,
            kernel_uid=kernel.uid,
            config=executed,
            time_s=m.time_s + wait_s,
            power_w=m.total_power_w,
            power_cap_w=cap,
            phase=phase,
        )

    def _profile_with_retry(
        self, kernel: Kernel, cfg: Configuration
    ) -> tuple[KernelProfile | None, float]:
        """Profile once, retrying failed runs with capped exponential
        backoff.  Returns ``(profile, backoff seconds waited)``;
        ``profile`` is ``None`` when the retry budget is exhausted."""
        try:
            return self.library.profile(kernel, cfg), 0.0
        except SampleRunError:
            pass
        wait_s = 0.0
        with trace_span("online/degraded"):
            for attempt in range(self.retry_limit):
                _RETRIES.inc()
                wait_s += min(
                    self.backoff_base_s * (2.0**attempt), self.backoff_cap_s
                )
                try:
                    return self.library.profile(kernel, cfg), wait_s
                except SampleRunError:
                    continue
        return None, wait_s

    def _note_stuck(
        self,
        kernel: Kernel,
        requested: Configuration,
        executed: Configuration,
        phase: str,
    ) -> None:
        """Degrade after a stuck/throttled execution: count it and, for
        scheduled work, quarantine the configuration so the scheduler
        re-selects from the surviving frontier next invocation."""
        _STUCK_EXECUTIONS.inc()
        if phase != "scheduled" or not self.quarantine_stuck:
            return
        with trace_span("online/degraded"):
            self.scheduler.quarantine(requested)
            # Limiter refinements pinned to the quarantined configuration
            # are stale: drop them so the limiter re-walks from the
            # scheduler's next choice.
            self._limited = {
                key: value
                for key, value in self._limited.items()
                if value != requested
            }
            log_event(
                _log,
                logging.WARNING,
                "runtime-pstate-stuck",
                kernel=kernel.uid,
                requested=requested.label(),
                executed=executed.label(),
            )

    def _prediction_for(self, kernel: Kernel) -> KernelPrediction:
        if kernel.uid not in self._predictions:
            history = self.library.database.for_kernel(kernel.uid)
            # The first two recorded profiles are the sample runs, in
            # protocol order.  Match by configuration when possible; a
            # P-state fault during sampling substitutes the executed
            # configuration, in which case fall back to record order.
            cpu_m = next(
                (p.measurement for p in history if p.config == CPU_SAMPLE),
                history[0].measurement,
            )
            gpu_m = next(
                (p.measurement for p in history if p.config == GPU_SAMPLE),
                history[1].measurement,
            )
            cluster = None
            if not (
                measurement_is_finite(cpu_m) and measurement_is_finite(gpu_m)
            ):
                # Corrupt classification inputs (dropout/NaN during the
                # sample runs): sanitize the anchors and skip the tree in
                # favour of the conservative default cluster.
                with trace_span("online/degraded"):
                    _CORRUPT_SAMPLES.inc()
                    cpu_m = sanitize_measurement(cpu_m)
                    gpu_m = sanitize_measurement(gpu_m)
                    cluster = self.model.default_cluster
                    log_event(
                        _log,
                        logging.WARNING,
                        "runtime-corrupt-samples",
                        kernel=kernel.uid,
                        fallback_cluster=cluster,
                    )
            self._predictions[kernel.uid] = self.model.predict_kernel(
                cpu_m,
                gpu_m,
                kernel_uid=kernel.uid,
                with_uncertainty=self.risk_averse,
                cluster=cluster,
            )
        return self._predictions[kernel.uid]


class StaticRuntime:
    """Baseline: every kernel on one fixed configuration, cap-blind."""

    def __init__(self, library: ProfilingLibrary, config: Configuration) -> None:
        self.library = library
        self.config = config

    def run(
        self,
        application: Application,
        n_timesteps: int,
        power_cap_w: CapSchedule,
    ) -> ApplicationTrace:
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        trace = ApplicationTrace(application=application.name)
        for t in range(n_timesteps):
            cap = _cap_at(power_cap_w, t)
            for kernel in application.kernels:
                m = self.library.profile(kernel, self.config).measurement
                trace.record(
                    KernelExecution(
                        timestep=t,
                        kernel_uid=kernel.uid,
                        config=self.config,
                        time_s=m.time_s,
                        power_w=m.total_power_w,
                        power_cap_w=cap,
                        phase="static",
                    )
                )
        return trace


class OracleRuntime:
    """Baseline: ground-truth best configuration per kernel per cap."""

    def __init__(self, library: ProfilingLibrary) -> None:
        self.library = library
        self._oracle = Oracle(library.apu)

    def run(
        self,
        application: Application,
        n_timesteps: int,
        power_cap_w: CapSchedule,
    ) -> ApplicationTrace:
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        trace = ApplicationTrace(application=application.name)
        for t in range(n_timesteps):
            cap = _cap_at(power_cap_w, t)
            for kernel in application.kernels:
                cfg = self._oracle.decide(kernel, cap).config
                m = self.library.profile(kernel, cfg).measurement
                trace.record(
                    KernelExecution(
                        timestep=t,
                        kernel_uid=kernel.uid,
                        config=cfg,
                        time_s=m.time_s,
                        power_w=m.total_power_w,
                        power_cap_w=cap,
                        phase="oracle",
                    )
                )
        return trace
