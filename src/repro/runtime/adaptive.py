"""The adaptive runtime: whole applications under (dynamic) power caps.

The paper positions its profiling library as "a foundation for dynamic
scheduling" (Section III-D) and notes that predicted Pareto frontiers
make the system "adaptable to dynamic power constraints" (Section
III-C).  :class:`AdaptiveRuntime` realizes that runtime:

* **timestep loop** — each timestep invokes every application kernel
  once, in order (Section III-A's sequential-kernel assumption);
* **online protocol** — a kernel's first invocation runs on the CPU
  sample configuration, its second on the GPU sample configuration
  (Table II); both are ordinary application work whose time and energy
  are charged to the run (Section IV-C).  After the second invocation
  the kernel is classified and its whole-space prediction cached;
* **scheduling** — from the third invocation on, the kernel runs on the
  configuration the scheduler picks from its cached prediction for the
  *current* cap.  Cap changes between timesteps cost one frontier
  lookup per kernel — no new measurements;
* **re-sampling on input change** — Section VI observes the system
  "does not automatically differentiate between invocations of the same
  kernel with distinct data inputs"; our kernels are keyed by
  (benchmark, input, name), so a changed input is a new kernel uid and
  automatically re-enters the sample protocol.

Baselines for comparison: :class:`StaticRuntime` (one fixed
configuration for everything) and :class:`OracleRuntime` (ground-truth
best configuration per kernel per cap).
"""

from __future__ import annotations

import logging
from typing import Callable

from repro.constants import respects_cap
from repro.core.model import AdaptiveModel
from repro.core.predictor import KernelPrediction
from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE
from repro.core.scheduler import Scheduler
from repro.hardware.config import Configuration
from repro.hardware.rapl import FrequencyLimiter
from repro.methods.oracle import Oracle
from repro.profiling.library import ProfilingLibrary
from repro.runtime.application import Application
from repro.runtime.trace import ApplicationTrace, KernelExecution
from repro.telemetry import counter, get_logger, log_event
from repro.workloads.kernel import Kernel

__all__ = ["AdaptiveRuntime", "StaticRuntime", "OracleRuntime", "CapSchedule"]

_log = get_logger(__name__)

# Runtime-level accounting (docs/OBSERVABILITY.md): one invocation per
# kernel execution in the timestep loop; violations judge measured power
# against the timestep's cap with the shared CAP_EPSILON tolerance.
_INVOCATIONS = counter("runtime.invocations")
_CAP_VIOLATIONS = counter("runtime.cap_violations")

#: A power cap per timestep: constant, or a function of the timestep.
CapSchedule = float | Callable[[int], float]


def _cap_at(cap: CapSchedule, timestep: int) -> float:
    value = cap(timestep) if callable(cap) else cap
    if value <= 0:
        raise ValueError(f"power cap at timestep {timestep} must be positive")
    return float(value)


class AdaptiveRuntime:
    """Model-driven application runtime (the paper's system, end to end).

    Parameters
    ----------
    model:
        A trained :class:`AdaptiveModel` (train it without the
        application's benchmark for honest evaluation).
    library:
        Profiling library executing and recording every invocation.
    scheduler:
        Selection policy (defaults to maximize-performance).
    risk_averse:
        Use prediction-confidence bounds when scheduling (Section VI).
    frequency_limiter:
        Combine the model with RAPL-style frequency limiting — the
        paper's winning ``Model+FL`` method (Section V-A) at application
        level.  After the model commits a kernel to a device/thread
        configuration, the limiter walks frequency down if measured
        power still violates the cap; the refined configuration is
        remembered per (kernel, cap) so the limiter's step-down runs
        pay off across timesteps.
    """

    def __init__(
        self,
        model: AdaptiveModel,
        library: ProfilingLibrary,
        *,
        scheduler: Scheduler | None = None,
        risk_averse: bool = False,
        frequency_limiter: bool = False,
    ) -> None:
        self.model = model
        self.library = library
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.risk_averse = risk_averse
        self._predictions: dict[str, KernelPrediction] = {}
        self._limiter = (
            FrequencyLimiter(library.apu) if frequency_limiter else None
        )
        self._limited: dict[tuple[str, float], Configuration] = {}

    def run(
        self,
        application: Application,
        n_timesteps: int,
        power_cap_w: CapSchedule,
    ) -> ApplicationTrace:
        """Execute ``n_timesteps`` of the application under the cap
        schedule and return the full trace."""
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        trace = ApplicationTrace(application=application.name)
        for t in range(n_timesteps):
            cap = _cap_at(power_cap_w, t)
            for kernel in application.kernels:
                trace.record(self._invoke(kernel, t, cap))
        return trace

    def _invoke(self, kernel: Kernel, timestep: int, cap: float) -> KernelExecution:
        seen = self.library.database.iterations(kernel.uid)
        if seen == 0:
            cfg, phase = CPU_SAMPLE, "sample-cpu"
        elif seen == 1:
            cfg, phase = GPU_SAMPLE, "sample-gpu"
        else:
            prediction = self._prediction_for(kernel)
            decision = self.scheduler.select(
                prediction, cap, risk_averse=self.risk_averse
            )
            cfg, phase = decision.config, "scheduled"
            if self._limiter is not None:
                key = (kernel.uid, cap)
                if key not in self._limited:
                    result = self._limiter.limit(kernel, cfg, cap)
                    self._limited[key] = result.final_config
                cfg = self._limited[key]
        profile = self.library.profile(kernel, cfg)
        m = profile.measurement
        _INVOCATIONS.inc()
        if not respects_cap(m.total_power_w, cap):
            _CAP_VIOLATIONS.inc()
            log_event(
                _log,
                logging.DEBUG,
                "runtime-cap-violation",
                kernel=kernel.uid,
                timestep=timestep,
                phase=phase,
                cap_w=round(cap, 3),
                power_w=round(m.total_power_w, 3),
                config=cfg.label(),
            )
        return KernelExecution(
            timestep=timestep,
            kernel_uid=kernel.uid,
            config=cfg,
            time_s=m.time_s,
            power_w=m.total_power_w,
            power_cap_w=cap,
            phase=phase,
        )

    def _prediction_for(self, kernel: Kernel) -> KernelPrediction:
        if kernel.uid not in self._predictions:
            history = self.library.database.for_kernel(kernel.uid)
            cpu_m = next(
                p.measurement for p in history if p.config == CPU_SAMPLE
            )
            gpu_m = next(
                p.measurement for p in history if p.config == GPU_SAMPLE
            )
            self._predictions[kernel.uid] = self.model.predict_kernel(
                cpu_m,
                gpu_m,
                kernel_uid=kernel.uid,
                with_uncertainty=self.risk_averse,
            )
        return self._predictions[kernel.uid]


class StaticRuntime:
    """Baseline: every kernel on one fixed configuration, cap-blind."""

    def __init__(self, library: ProfilingLibrary, config: Configuration) -> None:
        self.library = library
        self.config = config

    def run(
        self,
        application: Application,
        n_timesteps: int,
        power_cap_w: CapSchedule,
    ) -> ApplicationTrace:
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        trace = ApplicationTrace(application=application.name)
        for t in range(n_timesteps):
            cap = _cap_at(power_cap_w, t)
            for kernel in application.kernels:
                m = self.library.profile(kernel, self.config).measurement
                trace.record(
                    KernelExecution(
                        timestep=t,
                        kernel_uid=kernel.uid,
                        config=self.config,
                        time_s=m.time_s,
                        power_w=m.total_power_w,
                        power_cap_w=cap,
                        phase="static",
                    )
                )
        return trace


class OracleRuntime:
    """Baseline: ground-truth best configuration per kernel per cap."""

    def __init__(self, library: ProfilingLibrary) -> None:
        self.library = library
        self._oracle = Oracle(library.apu)

    def run(
        self,
        application: Application,
        n_timesteps: int,
        power_cap_w: CapSchedule,
    ) -> ApplicationTrace:
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        trace = ApplicationTrace(application=application.name)
        for t in range(n_timesteps):
            cap = _cap_at(power_cap_w, t)
            for kernel in application.kernels:
                cfg = self._oracle.decide(kernel, cap).config
                m = self.library.profile(kernel, cfg).measurement
                trace.record(
                    KernelExecution(
                        timestep=t,
                        kernel_uid=kernel.uid,
                        config=cfg,
                        time_s=m.time_s,
                        power_w=m.total_power_w,
                        power_cap_w=cap,
                        phase="oracle",
                    )
                )
        return trace
