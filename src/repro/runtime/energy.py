"""Energy-budgeted schedule optimization.

The paper's scheduler maximizes performance under a *power* cap; its
related work (Springer et al., PPoPP 2006 — paper reference [15])
solves the sibling problem: "given an energy budget, select ... an
appropriate number of nodes and a per-phase DVFS setting to minimize
application completion time."  Because our model predicts power *and*
time for every configuration, that problem is solvable directly on the
predicted frontiers — no extra profiling.

Formally: one application timestep invokes kernels ``k`` once each;
choosing configuration ``c`` for kernel ``k`` costs predicted time
``t_kc`` and energy ``e_kc = p_kc * t_kc``.  Minimize total time subject
to total energy <= budget.  Each kernel's (energy, time) options form a
Pareto set; the classic greedy walks the steepest time-per-joule
trade-offs first, which is optimal for the convex relaxation and the
standard heuristic for the discrete problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.constants import respects_cap
from repro.core.predictor import KernelPrediction
from repro.hardware.config import Configuration

__all__ = ["EnergySchedule", "optimize_energy_budget"]


@dataclass(frozen=True)
class EnergySchedule:
    """Result of an energy-budget optimization for one timestep.

    Attributes
    ----------
    assignments:
        Chosen configuration per kernel uid.
    predicted_time_s:
        Total predicted timestep time.
    predicted_energy_j:
        Total predicted timestep energy.
    budget_j:
        The budget optimized against.
    feasible:
        Whether the budget could be met at all (the all-minimum-energy
        assignment defines the floor).
    """

    assignments: Mapping[str, Configuration]
    predicted_time_s: float
    predicted_energy_j: float
    budget_j: float

    @property
    def feasible(self) -> bool:
        """Whether the predicted energy respects the budget (shared
        :data:`repro.constants.CAP_EPSILON` tolerance)."""
        return respects_cap(self.predicted_energy_j, self.budget_j)


def _energy_time_options(
    prediction: KernelPrediction,
) -> list[tuple[float, float, Configuration]]:
    """A kernel's Pareto-optimal (energy, time, config) options, sorted
    by ascending energy with strictly decreasing time."""
    t = 1.0 / prediction.performance_array
    e = prediction.power_array * t
    order = np.lexsort((t, e))  # stable (energy, time) sort
    configs = prediction.config_tuple
    frontier: list[tuple[float, float, Configuration]] = []
    best_t = float("inf")
    for i in order:
        if t[i] < best_t:
            frontier.append((float(e[i]), float(t[i]), configs[i]))
            best_t = t[i]
    return frontier


def optimize_energy_budget(
    predictions: Mapping[str, KernelPrediction],
    budget_j: float,
) -> EnergySchedule:
    """Choose per-kernel configurations minimizing predicted time under
    a per-timestep energy budget.

    Greedy on marginal time-saved-per-joule over each kernel's
    energy-time Pareto set.  If even the minimum-energy assignment
    exceeds the budget, that assignment is returned with
    ``feasible == False`` (the work must still run).
    """
    if not predictions:
        raise ValueError("need at least one kernel prediction")
    if budget_j <= 0:
        raise ValueError("budget_j must be positive")

    options = {uid: _energy_time_options(p) for uid, p in predictions.items()}
    # Start every kernel at its minimum-energy option.
    cursor = {uid: 0 for uid in options}
    energy = sum(opts[0][0] for opts in options.values())
    time = sum(opts[0][1] for opts in options.values())

    remaining = budget_j - energy
    if remaining > 0:
        # Steps: moving kernel uid from option i to i+1 costs
        # delta-e and saves delta-t; take best savings-per-joule first.
        import heapq

        heap: list[tuple[float, str]] = []

        def push(uid: str) -> None:
            i = cursor[uid]
            opts = options[uid]
            if i + 1 < len(opts):
                de = opts[i + 1][0] - opts[i][0]
                dt = opts[i][1] - opts[i + 1][1]
                if de <= 0:  # strictly cheaper and faster: take freely
                    heapq.heappush(heap, (-float("inf"), uid))
                else:
                    heapq.heappush(heap, (-dt / de, uid))

        for uid in options:
            push(uid)
        while heap:
            _, uid = heapq.heappop(heap)
            i = cursor[uid]
            opts = options[uid]
            de = opts[i + 1][0] - opts[i][0]
            dt = opts[i][1] - opts[i + 1][1]
            if de > remaining:
                continue
            remaining -= de
            energy += de
            time -= dt
            cursor[uid] += 1
            push(uid)

    assignments = {
        uid: options[uid][cursor[uid]][2] for uid in options
    }
    return EnergySchedule(
        assignments=assignments,
        predicted_time_s=time,
        predicted_energy_j=energy,
        budget_j=budget_j,
    )
