"""repro — reproduction of Bailey et al., "Adaptive Configuration
Selection for Power-Constrained Heterogeneous Systems" (ICPP 2014).

A production-quality Python library implementing the paper's adaptive
power/performance model and every substrate it depends on:

* :mod:`repro.hardware` — a simulated AMD Trinity APU (timing, two-plane
  power, counters, RAPL-style frequency limiting);
* :mod:`repro.workloads` — the 36-kernel / 65-combination synthetic
  benchmark suite (LULESH, CoMD, SMC, LU);
* :mod:`repro.profiling` — 1 kHz power sampling and the instrumented
  profiling library;
* :mod:`repro.stats` — from-scratch OLS, Kendall tau, relational
  clustering (PAM / average linkage), and a CART classification tree;
* :mod:`repro.core` — the paper's contribution: frontier derivation,
  kernel clustering, per-cluster regression, tree-based cluster
  assignment, online two-iteration prediction, and power-cap
  scheduling;
* :mod:`repro.methods` — the compared power-limiting strategies (Model,
  Model+FL, CPU+FL, GPU+FL, and the oracle);
* :mod:`repro.evaluation` — the paper's experimental harness
  (leave-one-benchmark-out cross-validation, under/over-limit metrics,
  and renderers for every table and figure);
* :mod:`repro.telemetry` — pipeline observability: metrics registry,
  hierarchical span tracing, structured logging, and the
  ``telemetry.json`` report (see ``docs/OBSERVABILITY.md``).

Quickstart::

    from repro import (
        TrinityAPU, ProfilingLibrary, build_suite, train_model,
        OnlinePredictor, Scheduler,
    )

    apu = TrinityAPU(seed=0)
    library = ProfilingLibrary(apu, seed=0)
    suite = build_suite()

    train = [k for k in suite if k.benchmark != "LU"]
    model = train_model(library, train)

    new_kernel = suite.get("LU/Small/LUDecomposition")
    prediction = OnlinePredictor(model, library).predict(new_kernel)
    decision = Scheduler().select(prediction, power_cap_w=20.0)
    print(decision.config.label())
"""

from repro.core import (
    AdaptiveModel,
    KernelCharacterization,
    KernelPrediction,
    OnlinePredictor,
    ParetoFrontier,
    Scheduler,
    SchedulerDecision,
    characterize_kernel,
    train_model,
)
from repro.hardware import (
    Configuration,
    ConfigSpace,
    Device,
    FrequencyLimiter,
    KernelCharacteristics,
    Measurement,
    NoiseModel,
    TrinityAPU,
)
from repro.profiling import ProfileDatabase, ProfilingLibrary
from repro.workloads import Kernel, Suite, build_suite

__version__ = "1.0.0"

__all__ = [
    "AdaptiveModel",
    "ConfigSpace",
    "Configuration",
    "Device",
    "FrequencyLimiter",
    "Kernel",
    "KernelCharacteristics",
    "KernelCharacterization",
    "KernelPrediction",
    "Measurement",
    "NoiseModel",
    "OnlinePredictor",
    "ParetoFrontier",
    "ProfileDatabase",
    "ProfilingLibrary",
    "Scheduler",
    "SchedulerDecision",
    "Suite",
    "TrinityAPU",
    "build_suite",
    "characterize_kernel",
    "train_model",
    "__version__",
]
