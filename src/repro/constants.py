"""Shared numeric constants of the reproduction.

Kept dependency-free so every layer (hardware, runtime, evaluation,
cluster) can import them without cycles.
"""

from __future__ import annotations

__all__ = ["CAP_EPSILON", "respects_cap"]

#: Relative tolerance for power-cap compliance checks.  A method (or
#: the oracle itself) that picks a configuration whose true power
#: exactly equals the cap must count as under-limit despite float
#: round-off, so every cap comparison in the codebase allows the cap
#: times ``1 + CAP_EPSILON``.
CAP_EPSILON: float = 1e-9


def respects_cap(power_w: float, cap_w: float) -> bool:
    """Whether ``power_w`` respects the cap ``cap_w`` (watts), using the
    shared relative tolerance :data:`CAP_EPSILON`."""
    return power_w <= cap_w * (1.0 + CAP_EPSILON)
