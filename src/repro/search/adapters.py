"""Adapters: discovered archives into the online/cluster/server stack.

A search archive already speaks the :class:`~repro.core.frontier.
ParetoFrontier` query language; these helpers package it into the
*owner* types of each layer so discovered frontiers are drop-in:

* :func:`archive_to_prediction` — a real :class:`~repro.core.predictor.
  KernelPrediction` (array-backed, with conservative synthetic sample
  anchors), consumable by :class:`~repro.core.scheduler.Scheduler`
  ``select`` / ``select_many`` / ``sweep_table`` and publishable into a
  :class:`~repro.server.service.DecisionService` via
  ``publish_predictions``;
* :func:`archive_to_node_frontier` — a :class:`~repro.cluster.node.
  NodeFrontier` whose operating points are the archive's, for
  :class:`~repro.cluster.pool.FrontierPool.from_frontiers` and the
  fleet allocators;
* :func:`pool_from_archives` — the one-call version for a whole fleet.
"""

from __future__ import annotations

from typing import Mapping

from repro.search.archive import EpsilonArchive

__all__ = [
    "archive_to_node_frontier",
    "archive_to_prediction",
    "pool_from_archives",
]

#: Cluster id attached to search-derived predictions: no classification
#: tree produced them, and nothing downstream branches on the value.
SEARCH_CLUSTER_ID: int = -1


def archive_to_prediction(
    archive: EpsilonArchive, kernel_uid: str
) -> "KernelPrediction":
    """Package an archive as an array-backed kernel prediction.

    The sample measurements — mandatory anchors of a prediction — are
    the same deterministic conservative synthetics the fault path uses
    when real sample runs are exhausted, attributed to the standard
    sample configurations.
    """
    from repro.core.predictor import KernelPrediction
    from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE
    from repro.faults import conservative_measurement

    if not len(archive):
        raise ValueError("archive is empty")
    configs = tuple(archive.configs())
    return KernelPrediction.from_arrays(
        kernel_uid=kernel_uid,
        cluster=SEARCH_CLUSTER_ID,
        configs=configs,
        index={cfg: i for i, cfg in enumerate(configs)},
        power_w=archive.powers.copy(),
        performance=archive.performances.copy(),
        cpu_sample=conservative_measurement(CPU_SAMPLE),
        gpu_sample=conservative_measurement(GPU_SAMPLE),
    )


def archive_to_node_frontier(archive: EpsilonArchive) -> "NodeFrontier":
    """Package an archive as a node rate-vs-cap frontier.

    Each archived point becomes an operating point whose cap and
    expected power are its power level — the same identification the
    per-kernel frontier uses when a node runs one kernel steady-state.
    """
    from repro.cluster.node import NodeFrontier, NodeFrontierPoint

    if not len(archive):
        raise ValueError("archive is empty")
    return NodeFrontier(
        [
            NodeFrontierPoint(
                cap_w=float(pw), expected_power_w=float(pw), rate=float(rt)
            )
            for pw, rt in zip(archive.powers, archive.performances)
        ]
    )


def pool_from_archives(
    archives: Mapping[str, EpsilonArchive],
) -> "FrontierPool":
    """A fleet frontier pool with one node per named archive."""
    from repro.cluster.pool import FrontierPool

    return FrontierPool.from_frontiers(
        {name: archive_to_node_frontier(a) for name, a in archives.items()}
    )
