"""Deterministic ε-dominance archive for (rate, power) search.

The archive is the search engine's answer store: every genome the
engine ever evaluates streams through :meth:`EpsilonArchive.insert`,
and what survives is a bounded, non-dominated approximation of the
space's Pareto frontier that speaks the same query language as
:class:`~repro.core.frontier.ParetoFrontier` (``best_under_cap``,
``indices_under_caps``, ``powers`` / ``performances`` arrays with the
same strictly-increasing invariants), so schedulers and adapters can
consume it unchanged.

ε-dominance (Laumanns et al.): objective space is cut into geometric
boxes of width ``(1+ε)`` — box index ``floor(ln v / ln(1+ε))`` per
objective — and at most one point survives per box, with boxes that are
dominated *at box level* removed entirely.  This bounds archive size
independently of how many points the search evaluates, while
guaranteeing every seen point is within a factor ``(1+ε)`` of some
archived point in both objectives.  ``ε = 0`` degrades to an exact
non-dominated archive with duplicate collapsing.

Search archives hit ties constantly (canonicalization collapses axes,
mutation revisits points), so determinism cannot lean on insertion
order: the archive **recomputes its contents from the full union** on
every insert with order-free tie-breaks — within a box the
representative is the (max rate, then min power, then lexicographically
smallest genome) — making final contents a pure function of the *set*
of points seen, bit-identical across runs and insertion orders.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EpsilonArchive"]


def _box_indices(values: np.ndarray, epsilon: float) -> np.ndarray:
    """Geometric ε-box index per strictly-positive objective value."""
    return np.floor(np.log(values) / np.log1p(epsilon)).astype(np.int64)


def _genome_ranks(genomes: np.ndarray) -> np.ndarray:
    """Lexicographic rank per genome row (equal rows share a rank)."""
    _, inverse = np.unique(genomes, axis=0, return_inverse=True)
    return inverse.reshape(-1)


class EpsilonArchive:
    """Bounded non-dominated archive over genomes of one space.

    Parameters
    ----------
    space:
        The :class:`~repro.search.space.GeneratedConfigSpace` the
        genomes belong to (used for decoding payloads on export).
    epsilon:
        ε-dominance resolution; ``0`` keeps the exact non-dominated set.
    """

    def __init__(self, space, *, epsilon: float = 0.0) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon={epsilon} must be >= 0")
        self.space = space
        self.epsilon = float(epsilon)
        self._genomes = np.empty((0, space.n_axes), dtype=np.int64)
        self._powers = np.empty(0, dtype=np.float64)
        self._rates = np.empty(0, dtype=np.float64)

    # -- maintenance -----------------------------------------------------------

    def insert(
        self, genomes: np.ndarray, powers: np.ndarray, rates: np.ndarray
    ) -> int:
        """Fold a batch of evaluated genomes in; returns archive size.

        Positivity is required (both objectives are physical rates and
        watts); violations indicate a broken evaluation model.
        """
        genomes = self.space.validate_genomes(genomes)
        powers = np.asarray(powers, dtype=np.float64).reshape(-1)
        rates = np.asarray(rates, dtype=np.float64).reshape(-1)
        if not (len(genomes) == len(powers) == len(rates)):
            raise ValueError("genomes/powers/rates length mismatch")
        if len(powers) and (powers.min() <= 0 or rates.min() <= 0):
            raise ValueError("powers and rates must be strictly positive")

        g = np.concatenate([self._genomes, genomes])
        pw = np.concatenate([self._powers, powers])
        rt = np.concatenate([self._rates, rates])
        if not len(g):
            return 0

        if self.epsilon > 0.0:
            bp = _box_indices(pw, self.epsilon)
            br = _box_indices(rt, self.epsilon)
        else:
            bp, br = pw, rt  # exact: each distinct (power, rate) is a box

        # Stage 1 — one representative per box, order-free tie-break:
        # highest rate, then lowest power, then smallest genome.
        grank = _genome_ranks(g)
        order = np.lexsort((grank, pw, -rt, br, bp))
        bp_s, br_s = bp[order], br[order]
        first = np.empty(len(order), dtype=bool)
        first[0] = True
        first[1:] = (bp_s[1:] != bp_s[:-1]) | (br_s[1:] != br_s[:-1])
        reps = order[first]

        # Stage 2 — box-level dominance sweep: sort boxes by (power box
        # asc, rate box desc); a box survives iff its rate box strictly
        # exceeds every cheaper box's (same-power-box lower-rate boxes
        # fall to the leader of their column).
        rp, rr = bp[reps], br[reps]
        sweep = np.lexsort((-rr, rp))
        rr_s = rr[sweep]
        keep = np.empty(len(sweep), dtype=bool)
        keep[0] = True
        if len(sweep) > 1:
            keep[1:] = rr_s[1:] > np.maximum.accumulate(rr_s)[:-1]
        kept = reps[sweep[keep]]

        self._genomes = np.ascontiguousarray(g[kept])
        self._powers = np.ascontiguousarray(pw[kept])
        self._rates = np.ascontiguousarray(rt[kept])
        return len(kept)

    # -- invariant views (ParetoFrontier-compatible surface) -------------------

    def __len__(self) -> int:
        return len(self._powers)

    @property
    def genomes(self) -> np.ndarray:
        """Archived genomes, ascending in power."""
        return self._genomes

    @property
    def powers(self) -> np.ndarray:
        """Archived power levels (watts), strictly increasing."""
        return self._powers

    @property
    def performances(self) -> np.ndarray:
        """Archived rates, strictly increasing (with powers)."""
        return self._rates

    @property
    def max_performance(self) -> float:
        return float(self._rates[-1])

    @property
    def min_power_w(self) -> float:
        return float(self._powers[0])

    def best_under_cap(self, power_cap_w: float):
        """Highest-rate archived point with power <= the cap, as a
        :class:`~repro.core.frontier.FrontierPoint` (config payload
        decoded from the genome), or ``None`` if infeasible."""
        from repro.core.frontier import FrontierPoint

        i = int(np.searchsorted(self._powers, power_cap_w, side="right"))
        if i == 0:
            return None
        payload = self.space.payloads(self._genomes[i - 1 : i])[0]
        return FrontierPoint(
            config=payload,
            power_w=float(self._powers[i - 1]),
            performance=float(self._rates[i - 1]),
        )

    def indices_under_caps(self, caps: np.ndarray) -> np.ndarray:
        """Vectorized cap sweep; ``-1`` where even the cheapest archived
        point exceeds the cap (same contract as ``ParetoFrontier``)."""
        return (
            np.searchsorted(self._powers, np.asarray(caps), side="right") - 1
        )

    # -- exports ---------------------------------------------------------------

    def configs(self) -> list:
        """Decoded config payloads, ascending in power."""
        return self.space.payloads(self._genomes)

    def to_frontier(self):
        """The archive as a real :class:`~repro.core.frontier.
        ParetoFrontier` (payloads decoded once)."""
        from repro.core.frontier import ParetoFrontier

        if not len(self):
            raise ValueError("archive is empty")
        return ParetoFrontier.from_arrays(
            self.configs(), self._powers.copy(), self._rates.copy()
        )
