"""Lazily-described combinatorial configuration spaces.

Every layer built before this one — :class:`~repro.core.frontier.
ParetoFrontier`, :class:`~repro.core.scheduler.CapSweepTable`,
:class:`~repro.cluster.pool.FrontierPool` — assumes the configuration
space is small enough to materialize and evaluate exhaustively (the
paper's Trinity space: 42 points).  Production spaces are combinatorial:
per-core DVFS × uncore × memory frequency × GPU clock multiplies into
millions of points, and *enumeration* becomes the dominant cost of
frontier construction.

A :class:`GeneratedConfigSpace` describes such a space without
materializing it:

* each :class:`FactorAxis` is a named, ordered tuple of levels (CPU
  frequency, thread count, ...);
* a candidate configuration is a **genome** — one integer index per
  axis; a population is an ``(n, n_axes)`` int matrix;
* an attached evaluation model decodes genome *columns* straight into
  ground-truth ``(rate, power)`` arrays in one vectorized pass (the
  :mod:`repro.hardware.batch` path), so the space's cost is the number
  of genomes *evaluated*, never the number of points it *contains*.

Exhaustive enumeration stays available for small spaces (it is how the
search engine is validated against the exact frontier) but is gated:
:meth:`GeneratedConfigSpace.all_genomes` raises
:class:`SpaceTooLargeError` beyond :data:`ENUMERATION_LIMIT` unless
explicitly forced, which is exactly the regime :mod:`repro.search.
engine` exists for.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.telemetry import counter, gauge

__all__ = [
    "ENUMERATION_LIMIT",
    "FactorAxis",
    "GeneratedConfig",
    "GeneratedConfigSpace",
    "SpaceTooLargeError",
    "backend_space",
    "demo_space",
    "paper_space",
]

#: Above this many points a space is considered non-enumerable and
#: ``all_genomes`` / ``exact_frontier`` must be forced explicitly.
ENUMERATION_LIMIT: int = 200_000

#: Rows per evaluation chunk when parallel evaluation is enabled.
EVAL_CHUNK_ROWS: int = 16_384


class SpaceTooLargeError(RuntimeError):
    """Raised when exhaustive enumeration of a space is infeasible."""


@dataclass(frozen=True)
class FactorAxis:
    """One named factor of a combinatorial space: an ordered value list.

    Genome integers index into ``values``; adjacent indices should be
    physically adjacent operating points (the search engine's mutation
    steps prefer neighbouring levels).
    """

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no levels")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.name!r} has duplicate levels")
        for v in self.values:
            if not math.isfinite(v):
                raise ValueError(f"axis {self.name!r} has non-finite level {v}")

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class GeneratedConfig:
    """A decoded point of a generated space (the frontier payload).

    Plays the role :class:`~repro.hardware.config.Configuration` plays
    for the enumerated Trinity space: an immutable, hashable identity
    for one operating point.  Spaces that map onto a real machine (the
    paper space) can substitute genuine ``Configuration`` objects via
    their model's ``payloads`` hook instead.
    """

    space: str
    names: tuple[str, ...]
    values: tuple[float, ...]

    def factors(self) -> dict[str, float]:
        """The point as a ``{axis name: level value}`` mapping."""
        return dict(zip(self.names, self.values))

    def label(self) -> str:
        """Compact human-readable identity, stable across runs."""
        inner = ",".join(
            f"{n}={v:g}" for n, v in zip(self.names, self.values)
        )
        return f"{self.space}[{inner}]"


class SpaceModel(Protocol):
    """Evaluation model attached to a :class:`GeneratedConfigSpace`.

    ``key`` must be hashable and capture everything the evaluation
    depends on besides the kernel (e.g. power constants) — it keys the
    process-wide exact-frontier memo.
    """

    key: tuple

    def canonicalize(self, space: "GeneratedConfigSpace", genomes: np.ndarray) -> np.ndarray:
        """Map genomes onto canonical representatives (idempotent)."""

    def evaluate(
        self, chars, columns: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode value columns into per-row ``(rates, powers)``."""

    def payloads(
        self, space: "GeneratedConfigSpace", genomes: np.ndarray
    ) -> list | None:
        """Optional: native config objects for genome rows (or None)."""


# Process-wide exact-frontier memo for generated spaces.  Validation
# reruns (every search-vs-exact gate, every benchmark repetition)
# re-derive the same enumerated table; with the space key and kernel
# characteristics in the key the build is pure, same memo family as the
# truth-table caches of PR 2 (see docs/OBSERVABILITY.md).
_EXACT_CACHE: dict[tuple, object] = {}
_EXACT_HITS = counter("cache.search_space.hits")
_EXACT_MISSES = counter("cache.search_space.misses")
_EXACT_SIZE = gauge("cache.search_space.size")
_EXACT_LOCK = threading.Lock()


def _characteristics(kernel):
    chars = getattr(kernel, "characteristics", None)
    return chars if chars is not None else kernel


class GeneratedConfigSpace:
    """A combinatorial configuration space described by factor axes.

    Parameters
    ----------
    name:
        Space identity (used in payload labels and memo keys).
    axes:
        The factor axes; genome column ``j`` indexes ``axes[j].values``.
    model:
        The evaluation model (see :class:`SpaceModel`).
    """

    def __init__(
        self, name: str, axes: Sequence[FactorAxis], model: SpaceModel
    ) -> None:
        if not axes:
            raise ValueError("a space needs at least one axis")
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names: {names}")
        self.name = name
        self.axes = tuple(axes)
        self.model = model
        self._radices = np.array([len(a) for a in self.axes], dtype=np.int64)
        self._value_tables = [
            np.asarray(a.values, dtype=np.float64) for a in self.axes
        ]

    # -- shape -----------------------------------------------------------------

    @property
    def n_axes(self) -> int:
        return len(self.axes)

    @property
    def radices(self) -> np.ndarray:
        """Number of levels per axis (genome column bounds)."""
        return self._radices

    @property
    def size(self) -> int:
        """Total number of points described (never materialized)."""
        return int(math.prod(int(r) for r in self._radices))

    @property
    def key(self) -> tuple:
        """Hashable identity of the space + model (memo key component)."""
        return (
            self.name,
            tuple((a.name, a.values) for a in self.axes),
            self.model.key,
        )

    # -- genomes ---------------------------------------------------------------

    def validate_genomes(self, genomes: np.ndarray) -> np.ndarray:
        g = np.ascontiguousarray(genomes, dtype=np.int64)
        if g.ndim != 2 or g.shape[1] != self.n_axes:
            raise ValueError(
                f"genomes must be (n, {self.n_axes}), got {g.shape}"
            )
        if g.size and (g.min() < 0 or np.any(g >= self._radices)):
            raise ValueError("genome indices out of axis bounds")
        return g

    def sample_genomes(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """``n`` canonical uniform-random genomes."""
        raw = rng.integers(0, self._radices, size=(n, self.n_axes))
        return self.canonicalize(raw)

    def canonicalize(self, genomes: np.ndarray) -> np.ndarray:
        """Model-defined canonical form (collapses don't-care axes)."""
        g = self.validate_genomes(genomes)
        return self.model.canonicalize(self, g)

    def decode_columns(self, genomes: np.ndarray) -> dict[str, np.ndarray]:
        """Genome columns decoded to axis-value arrays, keyed by name."""
        g = self.validate_genomes(genomes)
        return {
            a.name: self._value_tables[j][g[:, j]]
            for j, a in enumerate(self.axes)
        }

    def payloads(self, genomes: np.ndarray) -> list:
        """Config payloads per row: native objects when the model maps
        to a real machine, :class:`GeneratedConfig` otherwise."""
        g = self.validate_genomes(genomes)
        native = self.model.payloads(self, g)
        if native is not None:
            return native
        names = tuple(a.name for a in self.axes)
        cols = [self._value_tables[j][g[:, j]] for j in range(self.n_axes)]
        return [
            GeneratedConfig(
                space=self.name,
                names=names,
                values=tuple(float(c[i]) for c in cols),
            )
            for i in range(len(g))
        ]

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self, kernel, genomes: np.ndarray, *, n_jobs: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ground-truth ``(rates, powers)`` for genome rows.

        ``n_jobs > 1`` splits rows into chunks evaluated on a thread
        pool (numpy releases the GIL inside ufuncs); results are
        identical to the serial path because chunks are pure row slices.
        """
        g = self.canonicalize(genomes)
        chars = _characteristics(kernel)
        if n_jobs > 1 and len(g) > EVAL_CHUNK_ROWS:
            chunks = [
                g[i : i + EVAL_CHUNK_ROWS]
                for i in range(0, len(g), EVAL_CHUNK_ROWS)
            ]
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                parts = list(
                    pool.map(
                        lambda c: self.model.evaluate(
                            chars, self._columns_of(c)
                        ),
                        chunks,
                    )
                )
            rates = np.concatenate([p[0] for p in parts])
            powers = np.concatenate([p[1] for p in parts])
            return rates, powers
        return self.model.evaluate(chars, self._columns_of(g))

    def _columns_of(self, g: np.ndarray) -> dict[str, np.ndarray]:
        return {
            a.name: self._value_tables[j][g[:, j]]
            for j, a in enumerate(self.axes)
        }

    # -- enumeration (gated) ---------------------------------------------------

    def all_genomes(self, *, force: bool = False) -> np.ndarray:
        """Every genome of the space, canonicalized (duplicates possible
        where canonicalization collapses axes).

        Raises :class:`SpaceTooLargeError` above
        :data:`ENUMERATION_LIMIT` unless ``force=True`` — enumeration on
        such spaces is the cost this subsystem exists to avoid.
        """
        if self.size > ENUMERATION_LIMIT and not force:
            raise SpaceTooLargeError(
                f"space {self.name!r} has {self.size} points; exhaustive "
                f"enumeration is gated above {ENUMERATION_LIMIT} "
                f"(use search, or pass force=True)"
            )
        grids = np.meshgrid(
            *[np.arange(int(r), dtype=np.int64) for r in self._radices],
            indexing="ij",
        )
        raw = np.stack([grid.reshape(-1) for grid in grids], axis=1)
        return self.canonicalize(raw)

    def exact_frontier(self, kernel, *, force: bool = False):
        """The exhaustively-enumerated exact Pareto frontier (memoized).

        Pure in ``(space key, kernel characteristics)``; repeated
        validation runs hit the process-wide memo instead of re-decoding
        and re-evaluating the full table (``cache.search_space.*``
        counters account for it).
        """
        from repro.core.frontier import ParetoFrontier

        chars = _characteristics(kernel)
        memo_key = (self.key, chars)
        with _EXACT_LOCK:
            frontier = _EXACT_CACHE.get(memo_key)
        if frontier is not None:
            _EXACT_HITS.inc()
            return frontier
        _EXACT_MISSES.inc()
        genomes = self.all_genomes(force=force)
        rates, powers = self.evaluate(kernel, genomes)
        frontier = ParetoFrontier.from_arrays(
            self.payloads(genomes), powers, rates
        )
        with _EXACT_LOCK:
            _EXACT_CACHE[memo_key] = frontier
            _EXACT_SIZE.set(len(_EXACT_CACHE))
        return frontier


# -- the paper space (42-point Trinity, exactly the enumerated machine) --------


class _TrinityModel:
    """Batch evaluation over the simulated Trinity APU's real physics.

    Decoded rows are bit-identical to
    ``TrinityAPU.true_performance`` / ``true_total_power_w`` (boost
    off): the batch kernels mirror the scalar models operation for
    operation, and canonical genomes map one-to-one onto the 42 valid
    :class:`~repro.hardware.config.Configuration` objects.
    """

    def __init__(self, constants=None) -> None:
        from repro.hardware.power import PowerModelConstants

        self.constants = (
            constants if constants is not None else PowerModelConstants()
        )
        self.key = ("trinity", self.constants)

    def canonicalize(self, space, genomes: np.ndarray) -> np.ndarray:
        g = genomes.copy()
        is_gpu = g[:, 0] == 1
        # GPU configs pin one host thread; CPU configs park the GPU at
        # its minimum P-state — same collapse Configuration enforces.
        g[is_gpu, 2] = 0
        g[~is_gpu, 3] = 0
        return g

    def evaluate(self, chars, columns):
        from repro.hardware.batch import batch_true_rate_power

        return batch_true_rate_power(
            chars,
            columns["device"] == 1.0,
            columns["cpu_freq_ghz"],
            columns["n_threads"],
            columns["gpu_freq_ghz"],
            self.constants,
        )

    def payloads(self, space, genomes: np.ndarray) -> list:
        from repro.hardware.config import Configuration

        cols = space.decode_columns(genomes)
        out = []
        for dev, f, n, fg in zip(
            cols["device"],
            cols["cpu_freq_ghz"],
            cols["n_threads"],
            cols["gpu_freq_ghz"],
        ):
            if dev == 1.0:
                out.append(Configuration.gpu(float(fg), float(f)))
            else:
                out.append(Configuration.cpu(float(f), int(n)))
        return out


def paper_space(constants=None) -> GeneratedConfigSpace:
    """The paper's Trinity space as a generated space (144 genomes, 42
    canonical points) — the validation anchor: its exact frontier equals
    the oracle's ground-truth frontier bit for bit."""
    from repro.hardware import pstates

    axes = (
        FactorAxis("device", (0.0, 1.0)),
        FactorAxis("cpu_freq_ghz", pstates.CPU_FREQS_GHZ),
        FactorAxis(
            "n_threads", tuple(float(n) for n in range(1, pstates.N_CORES + 1))
        ),
        FactorAxis("gpu_freq_ghz", pstates.GPU_FREQS_GHZ),
    )
    return GeneratedConfigSpace("trinity", axes, _TrinityModel(constants))


# -- registered-backend spaces (search over any HardwareBackend) ---------------


class _BackendModel:
    """Vectorized truth for a registered :class:`HardwareBackend`.

    The genome carries both blocks' knobs; canonicalization collapses
    the inactive block exactly like the descriptor's enumeration does
    (primary configs park the secondary at its minimum frequency with
    one unit; secondary configs pin the host at the descriptor's host
    frequency), so canonical genomes map one-to-one onto
    ``descriptor.enumerate_configs()``.
    """

    def __init__(self, name: str) -> None:
        from repro.hardware.backend import create_backend, descriptor_for

        self.backend = create_backend(name)
        self.descriptor = descriptor_for(name)
        self.key = ("backend", name)

    def canonicalize(self, space, genomes: np.ndarray) -> np.ndarray:
        g = genomes.copy()
        is_gpu = g[:, 0] == 1
        # Axis order: device, cpu_freq_ghz, n_threads, gpu_freq_ghz,
        # gpu_units.  Host frequency is the primary block's maximum —
        # the last level of its ladder.
        g[is_gpu, 1] = len(self.descriptor.primary.freqs_ghz) - 1
        g[is_gpu, 2] = 0
        g[~is_gpu, 3] = 0
        g[~is_gpu, 4] = 0
        return g

    def evaluate(self, chars, columns):
        is_gpu = columns["device"] == 1.0
        n = np.where(is_gpu, columns["gpu_units"], columns["n_threads"])
        return self.backend.batch_rate_power(
            chars,
            is_gpu,
            columns["cpu_freq_ghz"],
            n,
            columns["gpu_freq_ghz"],
        )

    def payloads(self, space, genomes: np.ndarray) -> list:
        from repro.hardware.backend import BlockConfig
        from repro.hardware.config import Device

        d = self.descriptor
        cols = space.decode_columns(genomes)
        out = []
        for dev, f, n, fg, units in zip(
            cols["device"],
            cols["cpu_freq_ghz"],
            cols["n_threads"],
            cols["gpu_freq_ghz"],
            cols["gpu_units"],
        ):
            if dev == 1.0:
                out.append(
                    BlockConfig(
                        arch=d.name,
                        device=Device.GPU,
                        cpu_freq_ghz=d.host_freq_ghz(),
                        n_threads=int(units),
                        gpu_freq_ghz=float(fg),
                    )
                )
            else:
                out.append(
                    BlockConfig(
                        arch=d.name,
                        device=Device.CPU,
                        cpu_freq_ghz=float(f),
                        n_threads=int(n),
                        gpu_freq_ghz=d.secondary.min_freq_ghz,
                    )
                )
        return out


def backend_space(name: str) -> GeneratedConfigSpace:
    """A registered backend's two-block space as a generated space.

    Small enough for exact validation (like :func:`paper_space`), and
    the bridge that lets the search engine drive any backend in the
    registry.  Use :func:`paper_space` for ``"trinity"``: its space
    sweeps the *host* frequency of GPU configurations too, which the
    generic two-block genome deliberately collapses.
    """
    model = _BackendModel(name)
    d = model.descriptor
    axes = (
        FactorAxis("device", (0.0, 1.0)),
        FactorAxis("cpu_freq_ghz", d.primary.freqs_ghz),
        FactorAxis(
            "n_threads", tuple(float(n) for n in d.primary.thread_counts)
        ),
        FactorAxis("gpu_freq_ghz", d.secondary.freqs_ghz),
        FactorAxis(
            "gpu_units", tuple(float(n) for n in d.secondary.thread_counts)
        ),
    )
    return GeneratedConfigSpace(name, axes, model)


# -- the demo space (>1M points, enumeration-infeasible by design) -------------


@dataclass(frozen=True)
class _BigIronModel:
    """Analytic (rate, power) model for a many-axis server-class node.

    Extends the Trinity physics shapes — Amdahl × roofline timing,
    voltage-squared dynamic power — to five axes (core DVFS, core
    count, uncore, memory frequency, GPU clock) so the space is
    combinatorial while every term stays dimensionally plausible.  The
    model is *self-contained and deterministic*: the point of the demo
    space is scale, not machine fidelity.
    """

    cpu_fmax_ghz: float = 4.0
    gpu_fmax_ghz: float = 1.5
    uncore_fmax_ghz: float = 3.0
    mem_fmax_ghz: float = 3.2

    @property
    def key(self) -> tuple:
        return (
            "bigiron",
            self.cpu_fmax_ghz,
            self.gpu_fmax_ghz,
            self.uncore_fmax_ghz,
            self.mem_fmax_ghz,
        )

    def canonicalize(self, space, genomes: np.ndarray) -> np.ndarray:
        return genomes  # every axis always matters: already canonical

    def payloads(self, space, genomes: np.ndarray) -> None:
        return None  # GeneratedConfig payloads

    def evaluate(self, chars, columns):
        f = columns["cpu_freq_ghz"]
        n = columns["n_cores"]
        u = columns["uncore_ghz"]
        m = columns["mem_ghz"]
        g = columns["gpu_freq_ghz"]

        p = chars.parallel_fraction
        beta = chars.mem_fraction
        beta_g = chars.gpu_mem_fraction
        # Work splits between host and accelerator by GPU affinity; the
        # offloaded share is bounded by the parallel fraction.
        off = p * (chars.gpu_affinity / (1.0 + chars.gpu_affinity))

        s = f / self.cpu_fmax_ghz
        amdahl = 1.0 / ((1.0 - p) + p / n)
        bw = n / (1.0 + 0.25 * (n - 1))
        # Memory subsystem speed: DRAM frequency dominates, uncore
        # clock gates how much of it the cores can consume.
        mem_scale = (0.35 + 0.65 * (m / self.mem_fmax_ghz)) * (
            0.6 + 0.4 * (u / self.uncore_fmax_ghz)
        )
        t_cpu = (chars.work_s * (1.0 - off)) * (
            (1.0 - beta) / (amdahl * s) + beta / (bw * mem_scale)
        )

        fg = g / self.gpu_fmax_ghz
        t_gpu = (chars.work_s * off / chars.gpu_affinity) * (
            (1.0 - beta_g) / fg + beta_g / mem_scale
        ) + chars.launch_overhead_s * (self.cpu_fmax_ghz / f)
        # Host and device overlap; a small synchronization tax scales
        # with the offloaded share.
        t = np.maximum(t_cpu, t_gpu) * (1.0 + 0.05 * off)
        rates = 1.0 / t

        v = 0.55 + 0.12 * f
        act = chars.activity * (1.0 + 0.25 * chars.vector_fraction)
        cpu_w = 4.0 + 3.0 * v * v + n * 0.9 * act * f * v * v

        vu = 0.60 + 0.10 * u
        uncore_w = 1.5 + 4.0 * u * vu * vu * (
            0.3 + 0.7 * chars.dram_intensity
        )
        mem_w = 1.0 + 6.0 * chars.dram_intensity * (m / self.mem_fmax_ghz) * (
            bw / (16.0 / (1.0 + 0.25 * 15.0))
        )

        vg = 0.60 + 0.35 * g
        busy_num = (1.0 - beta_g) / fg
        busy = busy_num / (busy_num + beta_g)
        gpu_w = 3.0 + 5.0 * vg * vg + (
            40.0 * chars.gpu_activity * g * vg * vg * busy * off
        )

        powers = cpu_w + uncore_w + mem_w + gpu_w + 3.0
        return rates, powers


def _levels(lo: float, hi: float, n: int) -> tuple[float, ...]:
    return tuple(round(float(x), 4) for x in np.linspace(lo, hi, n))


def demo_space() -> GeneratedConfigSpace:
    """A 1,179,648-point generated space (32×16×12×12×16): per-core
    DVFS × core count × uncore × memory frequency × GPU clock.  Big
    enough that :meth:`GeneratedConfigSpace.all_genomes` refuses to
    enumerate it — the search engine's demonstration target."""
    model = _BigIronModel()
    axes = (
        FactorAxis("cpu_freq_ghz", _levels(0.8, model.cpu_fmax_ghz, 32)),
        FactorAxis("n_cores", tuple(float(n) for n in range(1, 17))),
        FactorAxis("uncore_ghz", _levels(0.8, model.uncore_fmax_ghz, 12)),
        FactorAxis("mem_ghz", _levels(0.933, model.mem_fmax_ghz, 12)),
        FactorAxis("gpu_freq_ghz", _levels(0.15, model.gpu_fmax_ghz, 16)),
    )
    return GeneratedConfigSpace("bigiron-demo", axes, model)
