"""Vectorized multi-objective search over generated config spaces.

Two engines, one contract: feed genomes through
:meth:`~repro.search.space.GeneratedConfigSpace.evaluate` and stream
every evaluated point into an :class:`~repro.search.archive.
EpsilonArchive`.

* :func:`nsga2_search` — NSGA-II-style (μ+λ) evolution: vectorized
  2-D non-dominated ranking (sort-and-sweep peeling, no O(n²) pairwise
  matrix), crowding-distance diversity, binary tournaments, uniform
  crossover and neighbour-step mutation over integer genome matrices.
  All inner loops are numpy over ``(n, n_axes)`` arrays.
* :func:`random_search` — the bounded random-sampling baseline the
  benchmark compares against (same archive, same evaluation path).

Determinism: one :class:`numpy.random.SeedSequence` per run, spawned
into one child generator per generation, each consumed in a fixed call
order — archives are bit-identical per seed regardless of evaluation
parallelism (chunked threads only split pure row ranges).

Parallelism: ``n_jobs`` resolves through the same ``REPRO_NJOBS``
convention as LOOCV (:func:`repro.evaluation.loocv.resolve_n_jobs`);
an attached fault plan forces the serial path, mirroring
``run_loocv``'s fault semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.search.archive import EpsilonArchive
from repro.search.space import GeneratedConfigSpace
from repro.telemetry import counter, gauge, trace_span

__all__ = [
    "SearchConfig",
    "SearchResult",
    "hypervolume",
    "nsga2_search",
    "random_search",
]

_GENERATIONS = counter("search.generations")
_EVALUATIONS = counter("search.evaluations")
_ARCHIVE_SIZE = gauge("search.archive_size")
_HYPERVOLUME = gauge("search.hypervolume")


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one search run (see docs/SEARCH.md for guidance).

    Attributes
    ----------
    population:
        Parent population size μ (λ offspring per generation equals μ).
    generations:
        Generation budget; the run may stop earlier on
        ``max_evaluations``.
    seed:
        Root of the run's ``SeedSequence``; same seed → bit-identical
        archive.
    epsilon:
        Archive ε-dominance resolution (0 = exact archive).
    crossover_rate:
        Per-offspring probability of uniform crossover (else clone).
    mutation_rate:
        Per-gene mutation probability; ``None`` → ``1 / n_axes``.
    max_evaluations:
        Hard evaluation budget across init + all generations.
    n_jobs:
        Evaluation parallelism; ``None`` → ``REPRO_NJOBS`` or serial.
    """

    population: int = 96
    generations: int = 40
    seed: int = 0
    epsilon: float = 1e-4
    crossover_rate: float = 0.9
    mutation_rate: float | None = None
    max_evaluations: int | None = None
    n_jobs: int | None = None

    def __post_init__(self) -> None:
        if self.population < 4:
            raise ValueError("population must be >= 4")
        if self.generations < 0:
            raise ValueError("generations must be >= 0")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")


@dataclass
class SearchResult:
    """Outcome of one search run."""

    archive: EpsilonArchive
    evaluations: int
    generations: int
    #: ``(cumulative evaluations, archive hypervolume)`` per generation.
    history: list[tuple[int, float]] = field(default_factory=list)
    #: Reference power (watts) used for the hypervolume series.
    hypervolume_ref_w: float = 0.0
    elapsed_s: float = 0.0

    @property
    def hypervolume(self) -> float:
        """Final archive hypervolume against the run's reference."""
        return self.history[-1][1] if self.history else 0.0


# -- scalarized helpers --------------------------------------------------------


def hypervolume(
    powers: np.ndarray, rates: np.ndarray, ref_power_w: float
) -> float:
    """2-D hypervolume of a point set against ``(ref_power_w, 0)``.

    Power is minimized, rate maximized: the dominated region is the
    union of rectangles ``[power_i, ref] × [0, rate_i]``.  Points at or
    beyond the reference power contribute nothing.
    """
    powers = np.asarray(powers, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    inside = powers < ref_power_w
    if not inside.any():
        return 0.0
    pw, rt = powers[inside], rates[inside]
    order = np.lexsort((-rt, pw))
    pw, rt = pw[order], rt[order]
    frontier_rt = np.maximum.accumulate(rt)
    keep = np.empty(len(pw), dtype=bool)
    keep[0] = True
    if len(pw) > 1:
        keep[1:] = rt[1:] > frontier_rt[:-1]
    pw, rt = pw[keep], rt[keep]
    prev = np.concatenate([[0.0], rt[:-1]])
    return float(np.sum((ref_power_w - pw) * (rt - prev)))


def non_dominated_rank(powers: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Pareto front rank per point (0 = non-dominated), vectorized.

    Peels fronts with a sort-and-sweep membership test per layer
    instead of the classic O(n²) dominance matrix; validated against
    :func:`_non_dominated_rank_reference` in the test suite.
    """
    n = len(powers)
    ranks = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n)
    front = 0
    while len(remaining):
        mask = _front_membership(powers[remaining], rates[remaining])
        ranks[remaining[mask]] = front
        remaining = remaining[~mask]
        front += 1
    return ranks


def _front_membership(powers: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated points (weak dominance, duplicates
    of a frontier point count as members)."""
    n = len(powers)
    order = np.lexsort((-rates, powers))
    pw, rt = powers[order], rates[order]
    # Walking in (power asc, rate desc) order: group points by equal
    # power; each group's first element carries the group's max rate.
    new_power = np.empty(n, dtype=bool)
    new_power[0] = True
    new_power[1:] = pw[1:] != pw[:-1]
    group_id = np.cumsum(new_power) - 1
    leader_rt = rt[new_power][group_id]
    # Best rate over all strictly cheaper groups.
    group_best = rt[new_power]
    prev_best = np.concatenate(
        [[-np.inf], np.maximum.accumulate(group_best)[:-1]]
    )
    cheaper_best = prev_best[group_id]
    # A point survives iff no strictly cheaper point matches its rate
    # (rate > cheaper_best: equality loses — strict in power) and no
    # equal-power point strictly beats it (rate == group leader's;
    # exact duplicates of the leader survive — weak dominance needs one
    # strict objective).
    member = (rt > cheaper_best) & (rt == leader_rt)
    out = np.zeros(n, dtype=bool)
    out[order] = member
    return out


def _non_dominated_rank_reference(
    powers: np.ndarray, rates: np.ndarray
) -> np.ndarray:
    """O(n²) reference ranking (tests only)."""
    n = len(powers)
    dominated_by = np.zeros((n, n), dtype=bool)
    for i in range(n):
        dominated_by[i] = (
            (powers <= powers[i])
            & (rates >= rates[i])
            & ((powers < powers[i]) | (rates > rates[i]))
        )
    ranks = np.full(n, -1, dtype=np.int64)
    remaining = np.ones(n, dtype=bool)
    front = 0
    while remaining.any():
        on_front = remaining & ~np.any(
            dominated_by[:, :] & remaining[None, :], axis=1
        )
        ranks[on_front] = front
        remaining &= ~on_front
        front += 1
    return ranks


def crowding_distance(
    powers: np.ndarray, rates: np.ndarray, ranks: np.ndarray
) -> np.ndarray:
    """NSGA-II crowding distance per point, computed front by front."""
    n = len(powers)
    crowd = np.zeros(n, dtype=np.float64)
    for front in range(int(ranks.max()) + 1 if n else 0):
        idx = np.flatnonzero(ranks == front)
        if len(idx) <= 2:
            crowd[idx] = np.inf
            continue
        for values in (powers[idx], rates[idx]):
            order = np.argsort(values, kind="stable")
            span = values[order[-1]] - values[order[0]]
            crowd[idx[order[0]]] = np.inf
            crowd[idx[order[-1]]] = np.inf
            if span > 0:
                gaps = (values[order[2:]] - values[order[:-2]]) / span
                crowd[idx[order[1:-1]]] += gaps
    return crowd


# -- the engines ---------------------------------------------------------------


def _resolve_jobs(n_jobs: int | None, fault_plan) -> int:
    if fault_plan is not None:
        return 1  # fault plans pin the serial path, as in run_loocv
    from repro.evaluation.loocv import resolve_n_jobs

    return max(1, resolve_n_jobs(n_jobs))


def _tournament(
    rng: np.random.Generator,
    n_pick: int,
    ranks: np.ndarray,
    crowd: np.ndarray,
) -> np.ndarray:
    """Binary tournament winners: lower rank, then higher crowding,
    then the lower index (deterministic)."""
    a = rng.integers(0, len(ranks), size=n_pick)
    b = rng.integers(0, len(ranks), size=n_pick)
    a_wins = (ranks[a] < ranks[b]) | (
        (ranks[a] == ranks[b]) & (crowd[a] >= crowd[b])
    )
    return np.where(a_wins, a, b)


def _make_offspring(
    rng: np.random.Generator,
    space: GeneratedConfigSpace,
    parents: np.ndarray,
    ranks: np.ndarray,
    crowd: np.ndarray,
    cfg: SearchConfig,
) -> np.ndarray:
    n = len(parents)
    mothers = parents[_tournament(rng, n, ranks, crowd)]
    fathers = parents[_tournament(rng, n, ranks, crowd)]
    # Uniform crossover per gene, gated per offspring.
    take_father = rng.random(mothers.shape) < 0.5
    cross = rng.random(n) < cfg.crossover_rate
    children = np.where(take_father & cross[:, None], fathers, mothers)
    # Mutation: mostly ±1 neighbour steps (axes order their levels), an
    # occasional uniform resample for long jumps.
    pm = cfg.mutation_rate if cfg.mutation_rate is not None else 1.0 / space.n_axes
    mutate = rng.random(children.shape) < pm
    steps = rng.integers(0, 2, size=children.shape) * 2 - 1  # ±1
    resample = rng.integers(0, space.radices, size=children.shape)
    jump = rng.random(children.shape) < 0.2
    stepped = np.clip(children + steps, 0, space.radices - 1)
    mutated = np.where(jump, resample, stepped)
    children = np.where(mutate, mutated, children)
    return space.canonicalize(children)


def nsga2_search(
    space: GeneratedConfigSpace,
    kernel,
    config: SearchConfig | None = None,
    *,
    fault_plan=None,
    hypervolume_ref_w: float | None = None,
) -> SearchResult:
    """Discover a near-Pareto (rate, power) frontier of ``space``.

    Returns a :class:`SearchResult` whose archive is bit-identical for
    a given ``(space, kernel, config)`` — see the module docstring.
    """
    cfg = config if config is not None else SearchConfig()
    n_jobs = _resolve_jobs(cfg.n_jobs, fault_plan)
    archive = EpsilonArchive(space, epsilon=cfg.epsilon)
    children_seeds = np.random.SeedSequence(cfg.seed).spawn(
        cfg.generations + 1
    )
    start = time.perf_counter()
    history: list[tuple[int, float]] = []
    evaluations = 0
    generations_run = 0

    with trace_span("search/run"):
        with trace_span("search/init"):
            rng = np.random.default_rng(children_seeds[0])
            pop = space.sample_genomes(rng, cfg.population)
            rates, powers = space.evaluate(kernel, pop, n_jobs=n_jobs)
            evaluations += len(pop)
            _EVALUATIONS.inc(len(pop))
            archive.insert(pop, powers, rates)
        ref = (
            hypervolume_ref_w
            if hypervolume_ref_w is not None
            else float(powers.max()) * 1.05
        )
        history.append((evaluations, hypervolume(archive.powers, archive.performances, ref)))
        _ARCHIVE_SIZE.set(len(archive))
        _HYPERVOLUME.set(history[-1][1])

        for gen in range(cfg.generations):
            if (
                cfg.max_evaluations is not None
                and evaluations + cfg.population > cfg.max_evaluations
            ):
                break
            with trace_span("search/generation"):
                rng = np.random.default_rng(children_seeds[gen + 1])
                ranks = non_dominated_rank(powers, rates)
                crowd = crowding_distance(powers, rates, ranks)
                children = _make_offspring(rng, space, pop, ranks, crowd, cfg)
                with trace_span("search/evaluate"):
                    c_rates, c_powers = space.evaluate(
                        kernel, children, n_jobs=n_jobs
                    )
                evaluations += len(children)
                _EVALUATIONS.inc(len(children))
                _GENERATIONS.inc()
                generations_run += 1
                archive.insert(children, c_powers, c_rates)

                # (μ+λ) environmental selection over parents+children.
                all_pop = np.concatenate([pop, children])
                all_rates = np.concatenate([rates, c_rates])
                all_powers = np.concatenate([powers, c_powers])
                all_ranks = non_dominated_rank(all_powers, all_rates)
                all_crowd = crowding_distance(all_powers, all_rates, all_ranks)
                order = np.lexsort(
                    (np.arange(len(all_pop)), -all_crowd, all_ranks)
                )
                take = order[: cfg.population]
                pop = all_pop[take]
                rates = all_rates[take]
                powers = all_powers[take]

            history.append(
                (
                    evaluations,
                    hypervolume(archive.powers, archive.performances, ref),
                )
            )
            _ARCHIVE_SIZE.set(len(archive))
            _HYPERVOLUME.set(history[-1][1])

    return SearchResult(
        archive=archive,
        evaluations=evaluations,
        generations=generations_run,
        history=history,
        hypervolume_ref_w=ref,
        elapsed_s=time.perf_counter() - start,
    )


def random_search(
    space: GeneratedConfigSpace,
    kernel,
    budget: int,
    *,
    seed: int = 0,
    epsilon: float = 1e-4,
    batch: int = 4096,
    n_jobs: int | None = None,
    fault_plan=None,
    hypervolume_ref_w: float | None = None,
) -> SearchResult:
    """Bounded uniform random sampling — the baseline the search engine
    must beat on evaluations-to-hypervolume (same archive semantics)."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    n_jobs_r = _resolve_jobs(n_jobs, fault_plan)
    archive = EpsilonArchive(space, epsilon=epsilon)
    seeds = np.random.SeedSequence(seed).spawn(
        (budget + batch - 1) // batch
    )
    start = time.perf_counter()
    history: list[tuple[int, float]] = []
    evaluations = 0
    ref = hypervolume_ref_w

    with trace_span("search/run"):
        for i, child_seed in enumerate(seeds):
            n = min(batch, budget - evaluations)
            rng = np.random.default_rng(child_seed)
            genomes = space.sample_genomes(rng, n)
            with trace_span("search/evaluate"):
                rates, powers = space.evaluate(kernel, genomes, n_jobs=n_jobs_r)
            evaluations += n
            _EVALUATIONS.inc(n)
            archive.insert(genomes, powers, rates)
            if ref is None:
                ref = float(powers.max()) * 1.05
            history.append(
                (
                    evaluations,
                    hypervolume(archive.powers, archive.performances, ref),
                )
            )
            _ARCHIVE_SIZE.set(len(archive))
            _HYPERVOLUME.set(history[-1][1])

    return SearchResult(
        archive=archive,
        evaluations=evaluations,
        generations=0,
        history=history,
        hypervolume_ref_w=float(ref),
        elapsed_s=time.perf_counter() - start,
    )
