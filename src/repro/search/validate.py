"""Validation of discovered frontiers against exact enumerated ones.

Two metrics, chosen to match how frontiers are actually *used* by the
rest of the stack (docs/SEARCH.md):

* **Hypervolume ratio** — archive hypervolume over exact-frontier
  hypervolume, shared reference point (5% past the exact frontier's
  maximum power).  Measures overall frontier quality in one number.
* **Per-cap rate regret** — the paper's cap convention (Section V-B:
  caps are the power levels of the exact frontier's own points): for
  every cap, compare the best rate the archive selects against the best
  rate the exact frontier selects.  This is the quantity the
  :class:`~repro.core.scheduler.Scheduler` ultimately cares about — a
  frontier with perfect hypervolume but a hole at one cap level fails
  here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.search.archive import EpsilonArchive
from repro.search.engine import hypervolume
from repro.search.space import GeneratedConfigSpace

__all__ = ["ValidationReport", "validate_against_exact"]


@dataclass(frozen=True)
class ValidationReport:
    """Quality of a discovered frontier vs the exact enumerated one."""

    hypervolume_ratio: float
    max_cap_regret: float
    mean_cap_regret: float
    n_caps: int
    ref_power_w: float
    exact_points: int
    archive_points: int

    def meets(self, *, min_hv_ratio: float, max_regret: float) -> bool:
        """Whether the discovered frontier clears both gates."""
        return (
            self.hypervolume_ratio >= min_hv_ratio
            and self.max_cap_regret <= max_regret
        )


def validate_against_exact(
    space: GeneratedConfigSpace,
    kernel,
    archive: EpsilonArchive,
    *,
    caps: np.ndarray | None = None,
    force: bool = False,
) -> ValidationReport:
    """Score ``archive`` against the space's exact frontier.

    ``caps`` defaults to the exact frontier's own power levels (the
    paper's cap sweep).  ``force`` forwards to
    :meth:`GeneratedConfigSpace.exact_frontier` for spaces above the
    enumeration gate.
    """
    exact = space.exact_frontier(kernel, force=force)
    ref = float(exact.powers[-1]) * 1.05
    hv_exact = hypervolume(exact.powers, exact.performances, ref)
    hv_archive = hypervolume(archive.powers, archive.performances, ref)
    ratio = hv_archive / hv_exact if hv_exact > 0 else 0.0

    sweep = exact.powers if caps is None else np.asarray(caps, dtype=np.float64)
    e_idx = exact.indices_under_caps(sweep)
    a_idx = archive.indices_under_caps(sweep)
    e_rates = np.where(e_idx >= 0, exact.performances[np.maximum(e_idx, 0)], 0.0)
    a_rates = np.where(
        a_idx >= 0, archive.performances[np.maximum(a_idx, 0)], 0.0
    )
    # Regret only where the exact frontier is feasible at all; an
    # archive that misses a feasible cap entirely scores full regret.
    feasible = e_rates > 0
    regret = np.zeros(len(sweep), dtype=np.float64)
    regret[feasible] = np.clip(
        1.0 - a_rates[feasible] / e_rates[feasible], 0.0, 1.0
    )
    return ValidationReport(
        hypervolume_ratio=float(ratio),
        max_cap_regret=float(regret.max()) if len(regret) else 0.0,
        mean_cap_regret=float(regret.mean()) if len(regret) else 0.0,
        n_caps=int(len(sweep)),
        ref_power_w=ref,
        exact_points=len(exact),
        archive_points=len(archive),
    )
