"""Design-space exploration: search-based Pareto frontier discovery.

Scales frontier construction past exhaustive enumeration (docs/
SEARCH.md): describe a combinatorial space lazily
(:class:`GeneratedConfigSpace`), search it with a vectorized
multi-objective engine (:func:`nsga2_search`, :func:`random_search`),
collect the result in a deterministic ε-dominance archive
(:class:`EpsilonArchive`), validate against exact enumeration where
that is feasible (:func:`validate_against_exact`), and adapt the
discovered frontier into the scheduler/cluster/server stack
(:mod:`repro.search.adapters`).
"""

from repro.search.adapters import (
    archive_to_node_frontier,
    archive_to_prediction,
    pool_from_archives,
)
from repro.search.archive import EpsilonArchive
from repro.search.engine import (
    SearchConfig,
    SearchResult,
    hypervolume,
    nsga2_search,
    random_search,
)
from repro.search.space import (
    ENUMERATION_LIMIT,
    FactorAxis,
    GeneratedConfig,
    GeneratedConfigSpace,
    SpaceTooLargeError,
    backend_space,
    demo_space,
    paper_space,
)
from repro.search.validate import ValidationReport, validate_against_exact

__all__ = [
    "ENUMERATION_LIMIT",
    "EpsilonArchive",
    "FactorAxis",
    "GeneratedConfig",
    "GeneratedConfigSpace",
    "SearchConfig",
    "SearchResult",
    "SpaceTooLargeError",
    "ValidationReport",
    "archive_to_node_frontier",
    "archive_to_prediction",
    "backend_space",
    "demo_space",
    "hypervolume",
    "nsga2_search",
    "paper_space",
    "pool_from_archives",
    "random_search",
    "validate_against_exact",
]
