"""Hierarchical budget splitting: node → rack → row → datacenter.

A real fleet does not hand one flat budget to 100k nodes — power
constraints "filter down from the system level to individual nodes"
(the paper's framing) through the physical distribution hierarchy:
the datacenter feed splits over rows, each row over its racks, each
rack over its nodes.  :class:`BudgetTree` models exactly that topology
on top of a :class:`~repro.cluster.pool.FrontierPool`, reusing the
vectorized allocation kernels at every level:

* each **rack** is summarized by an *aggregate frontier*: its members'
  floors summed, plus their marginal steps merged in best-first
  (exposure-utility) order — "if this rack's budget were b, what total
  rate would it sustain?";
* each **row** aggregates its racks the same way (merging already-
  sorted rack menus keeps the global utility order);
* :meth:`BudgetTree.allocate` then runs the requested policy top-down:
  datacenter budget over row aggregates, each row's share over its
  rack aggregates, each rack's share over its member nodes.

Aggregates are cached per rack and keyed by the rack's active-member
set, so dynamic membership (nodes dying, leaving, or joining the
pool) rebuilds only the touched racks — the untouched fleet's sorted
menus are reused as-is.  Operators can also move watts between racks
(:meth:`BudgetTree.shift_budget`) without touching the pool at all;
shifts are zero-sum, so the datacenter total is preserved, and a rack
pushed below its floor degrades gracefully through the kernels'
proportional floor scaling.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.cluster.allocation import allocate_pool
from repro.cluster.pool import FrontierPool
from repro.telemetry import counter, trace_span

__all__ = ["BudgetTree"]

_TREE_CALLS = counter("cluster.alloc.tree.calls")
_TREE_RACK_REBUILDS = counter("cluster.alloc.tree.rack_rebuilds")


def _aggregate_frontier(
    subpool: FrontierPool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse a subpool into one aggregate frontier.

    Returns ``(caps, rates, powers)`` arrays: point 0 is the summed
    floors, and each further point takes one more member step in the
    greedy exposure-utility order — the menu the parent level
    water-fills over.
    """
    view = subpool.view()
    floor_idx = view.offsets[:-1]
    base_cap = float(np.sum(view.caps[floor_idx]))
    base_rate = float(np.sum(view.rates[floor_idx]))
    base_power = float(np.sum(view.powers[floor_idx]))
    perm, sp, _sn, cum, *_ = view.order_bundle("greedy")
    # Rate and expected-power deltas per step, in the same node-major
    # step order the bundle's ``perm`` indexes.
    intra = np.ones(view.caps.size, dtype=bool)
    intra[floor_idx] = False
    idx = np.nonzero(intra)[0]
    drate = (view.rates[idx] - view.rates[idx - 1])[perm]
    dpower = (view.powers[idx] - view.powers[idx - 1])[perm]
    caps = base_cap + np.concatenate(([0.0], cum))
    rates = base_rate + np.concatenate(([0.0], np.cumsum(drate)))
    powers = base_power + np.concatenate(([0.0], np.cumsum(dpower)))
    return caps, rates, powers


def _pool_of_aggregates(
    names: list[str],
    aggregates: Mapping[str, tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> FrontierPool:
    """Pack per-group aggregate frontiers into a pool of their own."""
    caps = [aggregates[n][0] for n in names]
    rates = [aggregates[n][1] for n in names]
    powers = [aggregates[n][2] for n in names]
    offsets = np.concatenate(
        ([0], np.cumsum([c.size for c in caps]))
    ).astype(np.int64)
    return FrontierPool(
        names,
        np.concatenate(caps),
        np.concatenate(rates),
        np.concatenate(powers),
        offsets,
    )


class BudgetTree:
    """Top-down budget splitter over a fleet's physical hierarchy.

    Parameters
    ----------
    pool:
        The fleet's frontier pool (shared, not copied — membership
        changes on the pool are picked up on the next allocation).
    rack_of:
        Node name → rack name for every node in the pool.
    row_of:
        Rack name → row name for every rack named in ``rack_of``.
    """

    def __init__(
        self,
        pool: FrontierPool,
        rack_of: Mapping[str, str],
        row_of: Mapping[str, str],
    ) -> None:
        missing = [n for n in pool.active_names() if n not in rack_of]
        if missing:
            raise ValueError(f"nodes without a rack: {missing[:5]}")
        missing_rows = sorted(
            {r for r in rack_of.values() if r not in row_of}
        )
        if missing_rows:
            raise ValueError(f"racks without a row: {missing_rows[:5]}")
        self.pool = pool
        self._rack_of = dict(rack_of)
        self._row_of = dict(row_of)
        self._shifts: dict[str, float] = {}
        # Per-rack caches keyed by the rack's active-member tuple.
        self._rack_members: dict[str, tuple[str, ...]] = {}
        self._rack_subpool: dict[str, FrontierPool] = {}
        self._rack_aggregate: dict[str, tuple[np.ndarray, ...]] = {}
        self._rack_names: list[str] = []
        self._row_names: list[str] = []
        self._row_racks: dict[str, list[str]] = {}
        self._row_pool: FrontierPool | None = None
        self._row_rack_pools: dict[str, FrontierPool] = {}
        self._built_version = -1
        self.last_rack_budgets: dict[str, float] = {}

    @classmethod
    def regular(
        cls,
        pool: FrontierPool,
        *,
        rack_size: int = 32,
        racks_per_row: int = 8,
    ) -> "BudgetTree":
        """A uniform topology over the pool's nodes in insertion order:
        ``rack_size`` nodes per rack, ``racks_per_row`` racks per row."""
        if rack_size < 1 or racks_per_row < 1:
            raise ValueError("rack_size and racks_per_row must be >= 1")
        rack_of: dict[str, str] = {}
        row_of: dict[str, str] = {}
        for i, name in enumerate(pool.active_names()):
            rack = i // rack_size
            rack_name = f"rack{rack:06d}"
            rack_of[name] = rack_name
            row_of[rack_name] = f"row{rack // racks_per_row:04d}"
        return cls(pool, rack_of, row_of)

    # -- topology maintenance -----------------------------------------------

    def extend(
        self,
        rack_of: Mapping[str, str] | None = None,
        row_of: Mapping[str, str] | None = None,
    ) -> None:
        """Register newly joined nodes' rack assignments (and any new
        racks' rows) so the next allocation can place them."""
        if rack_of:
            self._rack_of.update(rack_of)
        if row_of:
            self._row_of.update(row_of)
        unrowed = sorted(
            {r for r in self._rack_of.values() if r not in self._row_of}
        )
        if unrowed:
            raise ValueError(f"racks without a row: {unrowed[:5]}")

    def shift_budget(self, from_rack: str, to_rack: str, watts: float) -> None:
        """Persistently move ``watts`` of every future split from one
        rack to another (zero-sum: the datacenter total is unchanged)."""
        if watts < 0:
            raise ValueError("watts must be non-negative")
        known = set(self._row_of)
        for rack in (from_rack, to_rack):
            if rack not in known:
                raise ValueError(f"unknown rack {rack!r}")
        self._shifts[from_rack] = self._shifts.get(from_rack, 0.0) - watts
        self._shifts[to_rack] = self._shifts.get(to_rack, 0.0) + watts

    def clear_shifts(self) -> None:
        """Drop all inter-rack budget shifts."""
        self._shifts.clear()

    # -- structure ----------------------------------------------------------

    def _ensure_structure(self) -> None:
        """Rebuild the aggregate menus of racks whose active membership
        changed since the last allocation (and only those)."""
        if self._built_version == self.pool.version:
            return
        members: dict[str, list[str]] = {}
        rack_order: list[str] = []
        for name in self.pool.active_names():
            rack = self._rack_of.get(name)
            if rack is None:
                raise ValueError(f"node {name!r} has no rack assignment")
            if rack not in members:
                members[rack] = []
                rack_order.append(rack)
            members[rack].append(name)
        if not members:
            raise ValueError("no active nodes in the tree")
        rebuilt = 0
        for rack in rack_order:
            tup = tuple(members[rack])
            if self._rack_members.get(rack) == tup:
                continue
            subpool = self.pool.subpool(tup)
            self._rack_members[rack] = tup
            self._rack_subpool[rack] = subpool
            self._rack_aggregate[rack] = _aggregate_frontier(subpool)
            rebuilt += 1
        _TREE_RACK_REBUILDS.inc(rebuilt)
        # Drop racks that lost all members.
        for rack in list(self._rack_members):
            if rack not in members:
                del self._rack_members[rack]
                del self._rack_subpool[rack]
                del self._rack_aggregate[rack]
        self._rack_names = rack_order
        row_racks: dict[str, list[str]] = {}
        row_order: list[str] = []
        for rack in rack_order:
            row = self._row_of[rack]
            if row not in row_racks:
                row_racks[row] = []
                row_order.append(row)
            row_racks[row].append(rack)
        self._row_racks = row_racks
        self._row_names = row_order
        # One pool of rack aggregates per row (the row's split menu) and
        # one pool of row aggregates (the datacenter's split menu).
        self._row_rack_pools = {
            row: _pool_of_aggregates(racks, self._rack_aggregate)
            for row, racks in row_racks.items()
        }
        row_aggregates = {
            row: _aggregate_frontier(rack_pool)
            for row, rack_pool in self._row_rack_pools.items()
        }
        self._row_pool = _pool_of_aggregates(row_order, row_aggregates)
        self._built_version = self.pool.version

    # -- allocation ---------------------------------------------------------

    def allocate(self, budget_w: float, policy: str = "greedy") -> np.ndarray:
        """Split a datacenter budget down the hierarchy.

        Returns per-node caps aligned with ``pool.active_names()``.
        Every level runs the same vectorized kernel as the flat
        :func:`~repro.cluster.allocation.allocate_pool`; a level's
        slack (budget its children's frontiers cannot absorb) simply
        stays unspent, as in the flat allocator.
        """
        if budget_w <= 0:
            raise ValueError("budget_w must be positive")
        _TREE_CALLS.inc()
        with trace_span("cluster/tree_allocate"):
            self._ensure_structure()
            assert self._row_pool is not None
            row_budgets = allocate_pool(self._row_pool, budget_w, policy)
            rack_budget: dict[str, float] = {}
            for row, row_b in zip(self._row_names, row_budgets.tolist()):
                rack_pool = self._row_rack_pools[row]
                shares = allocate_pool(rack_pool, row_b, policy)
                for rack, share in zip(self._row_racks[row], shares.tolist()):
                    rack_budget[rack] = share
            for rack, delta in self._shifts.items():
                if rack in rack_budget:
                    rack_budget[rack] += delta
            self.last_rack_budgets = dict(rack_budget)
            active_index = {
                name: i for i, name in enumerate(self.pool.active_names())
            }
            out = np.empty(len(active_index))
            for rack in self._rack_names:
                b = rack_budget[rack]
                if b <= 0:
                    raise ValueError(
                        f"rack {rack!r} budget driven non-positive "
                        f"({b:.3f} W) — reduce its outgoing shift"
                    )
                caps = allocate_pool(self._rack_subpool[rack], b, policy)
                for name, cap in zip(self._rack_members[rack], caps.tolist()):
                    out[active_index[name]] = cap
            return out
