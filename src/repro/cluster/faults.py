"""Cluster-tier fault schedules: nodes die, leave, and go stale.

The PR 5 fault layer (:mod:`repro.faults`) perturbs *measurements*
inside one node; a fleet additionally loses whole nodes.  This module
schedules those losses on the **epoch clock** of
:class:`~repro.cluster.manager.ClusterPowerManager` — deterministic and
replayable, like :class:`~repro.faults.plan.FaultPlan` is on the run
clock — and the manager degrades gracefully instead of crashing the
epoch loop:

* ``node_dead`` — the node crashes: it is dropped from allocation and
  executes nothing while the event is active; its budget share
  naturally redistributes to the survivors;
* ``node_leave`` — planned departure (drain, maintenance): same
  allocation effect as a death, counted separately;
* ``stale_frontier`` — the node is alive but its predictions are not
  trustworthy (e.g. its profiling refresh failed): the allocator sees
  only the node's floor point, so it receives its minimum honourable
  budget and still runs.

Every applied event increments a ``faults.cluster.*`` counter in the
telemetry registry.  Events naming nodes the manager does not know are
counted (``faults.cluster.unknown_node``) and skipped — membership is
dynamic by nature, so a stale plan must not kill the loop.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

__all__ = ["CLUSTER_FAULT_KINDS", "ClusterFaultEvent", "ClusterFaultPlan"]

#: Schema version of the cluster fault-plan JSON format.
CLUSTER_PLAN_FORMAT_VERSION = 1

#: Every supported cluster-tier fault kind.
CLUSTER_FAULT_KINDS: tuple[str, ...] = (
    "node_dead",
    "node_leave",
    "stale_frontier",
)


@dataclass(frozen=True)
class ClusterFaultEvent:
    """One scheduled cluster fault episode.

    Attributes
    ----------
    kind:
        One of :data:`CLUSTER_FAULT_KINDS`.
    node:
        Name of the affected node.
    start, duration:
        Active for manager epochs ``start <= e < start + duration``.
    """

    kind: str
    node: str
    start: int
    duration: int = 1

    def __post_init__(self) -> None:
        if self.kind not in CLUSTER_FAULT_KINDS:
            raise ValueError(
                f"unknown cluster fault kind {self.kind!r}; "
                f"expected one of {CLUSTER_FAULT_KINDS}"
            )
        if not self.node:
            raise ValueError("node must be non-empty")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")

    @property
    def stop(self) -> int:
        """First epoch the event is no longer active at."""
        return self.start + self.duration

    def active_at(self, epoch: int) -> bool:
        """Whether the event covers ``epoch``."""
        return self.start <= epoch < self.stop


@dataclass(frozen=True)
class ClusterFaultPlan:
    """An immutable, replayable schedule of cluster fault events."""

    events: tuple[ClusterFaultEvent, ...] = ()
    name: str = "unnamed"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, ClusterFaultEvent):
                raise TypeError(
                    f"expected ClusterFaultEvent, got {type(ev).__name__}"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ClusterFaultEvent]:
        return iter(self.events)

    @property
    def empty(self) -> bool:
        """Whether the plan schedules no events at all."""
        return not self.events

    @property
    def horizon(self) -> int:
        """First epoch after which no event is ever active."""
        return max((ev.stop for ev in self.events), default=0)

    def active_events(self, epoch: int) -> tuple[ClusterFaultEvent, ...]:
        """Events covering ``epoch``, in plan order."""
        return tuple(ev for ev in self.events if ev.active_at(epoch))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form of the plan (the JSON file's payload)."""
        return {
            "version": CLUSTER_PLAN_FORMAT_VERSION,
            "name": self.name,
            "events": [asdict(ev) for ev in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterFaultPlan":
        """Inverse of :meth:`to_dict` (validates the schema version)."""
        version = payload.get("version")
        if version != CLUSTER_PLAN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported cluster fault-plan version {version!r} "
                f"(expected {CLUSTER_PLAN_FORMAT_VERSION})"
            )
        events = tuple(
            ClusterFaultEvent(**ev) for ev in payload.get("events", ())
        )
        return cls(events=events, name=str(payload.get("name", "unnamed")))

    def to_file(self, path: str | Path) -> Path:
        """Write the plan as committed-scenario JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_file(cls, path: str | Path) -> "ClusterFaultPlan":
        """Load a scenario file written by :meth:`to_file`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- generators --------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        node_names: Iterable[str],
        *,
        n_events: int = 4,
        horizon: int = 8,
        max_duration: int = 3,
        kinds: Iterable[str] = CLUSTER_FAULT_KINDS,
        name: str | None = None,
    ) -> "ClusterFaultPlan":
        """A deterministic pseudo-random plan over the named nodes."""
        node_names = list(node_names)
        if not node_names:
            raise ValueError("node_names must be non-empty")
        kinds = tuple(kinds)
        unknown = set(kinds) - set(CLUSTER_FAULT_KINDS)
        if not kinds or unknown:
            raise ValueError(f"bad fault kinds: {sorted(unknown) or kinds}")
        if n_events < 0:
            raise ValueError("n_events must be >= 0")
        rng = np.random.default_rng(seed)
        events = tuple(
            ClusterFaultEvent(
                kind=kinds[int(rng.integers(len(kinds)))],
                node=node_names[int(rng.integers(len(node_names)))],
                start=int(rng.integers(max(1, horizon))),
                duration=int(rng.integers(1, max(2, max_duration + 1))),
            )
            for _ in range(n_events)
        )
        return cls(
            events=events, name=name if name is not None else f"random-{seed}"
        )
