"""Multi-node cluster power management — the paper's motivating scenario.

The paper's node-level model is framed as "a key ingredient to
maximizing performance on a multi-node cluster" (Section I): system-wide
power budgets filter down to per-node caps, and a cluster-level
allocator should hand each node the power where it buys the most
performance.  This subpackage builds that layer on top of the node-level
system:

* :class:`~repro.cluster.node.ClusterNode` — a node (own APU, profiling,
  adaptive runtime) exposing a predicted application-level
  rate-vs-cap :class:`~repro.cluster.node.NodeFrontier`;
* :mod:`~repro.cluster.allocation` — uniform (state of the practice)
  and greedy marginal water-filling (frontier-aware) budget splitting;
* :class:`~repro.cluster.manager.ClusterPowerManager` — epoch loop:
  allocate, run, account, reallocate when the budget moves.
"""

from repro.cluster.allocation import (
    allocation_summary,
    greedy_marginal_allocation,
    maxmin_allocation,
    uniform_allocation,
)
from repro.cluster.manager import ClusterPowerManager, ClusterReport, EpochResult
from repro.cluster.node import ClusterNode, NodeFrontier, NodeFrontierPoint

__all__ = [
    "ClusterNode",
    "ClusterPowerManager",
    "ClusterReport",
    "EpochResult",
    "NodeFrontier",
    "NodeFrontierPoint",
    "allocation_summary",
    "greedy_marginal_allocation",
    "maxmin_allocation",
    "uniform_allocation",
]
