"""Multi-node cluster power management — the paper's motivating scenario.

The paper's node-level model is framed as "a key ingredient to
maximizing performance on a multi-node cluster" (Section I): system-wide
power budgets filter down to per-node caps, and a cluster-level
allocator should hand each node the power where it buys the most
performance.  This subpackage builds that layer on top of the node-level
system:

* :class:`~repro.cluster.node.ClusterNode` — a node (own APU, profiling,
  adaptive runtime) exposing a predicted application-level
  rate-vs-cap :class:`~repro.cluster.node.NodeFrontier`;
* :class:`~repro.cluster.pool.FrontierPool` — every frontier of a fleet
  packed into flat structure-of-arrays storage with dynamic membership,
  the substrate the vectorized kernels run on;
* :mod:`~repro.cluster.allocation` — uniform (state of the practice),
  greedy marginal water-filling, and max-min fair budget splitting,
  vectorized from 4 nodes to 100k (pure-Python references retained for
  golden-record validation);
* :class:`~repro.cluster.tree.BudgetTree` — hierarchical node → rack →
  row → datacenter budget splitting over aggregated child frontiers;
* :mod:`~repro.cluster.faults` — epoch-clock fault schedules (dead,
  leaving, and stale nodes) the manager degrades through gracefully;
* :class:`~repro.cluster.manager.ClusterPowerManager` — epoch loop:
  allocate, run, account, reallocate when the budget moves.
"""

from repro.cluster.allocation import (
    allocate_pool,
    allocation_summary,
    greedy_marginal_allocation,
    greedy_marginal_allocation_reference,
    maxmin_allocation,
    maxmin_allocation_reference,
    pool_allocation_summary,
    uniform_allocation,
)
from repro.cluster.faults import (
    CLUSTER_FAULT_KINDS,
    ClusterFaultEvent,
    ClusterFaultPlan,
)
from repro.cluster.manager import ClusterPowerManager, ClusterReport, EpochResult
from repro.cluster.node import ClusterNode, NodeFrontier, NodeFrontierPoint
from repro.cluster.pool import FrontierPool
from repro.cluster.tree import BudgetTree

__all__ = [
    "BudgetTree",
    "CLUSTER_FAULT_KINDS",
    "ClusterFaultEvent",
    "ClusterFaultPlan",
    "ClusterNode",
    "ClusterPowerManager",
    "ClusterReport",
    "EpochResult",
    "FrontierPool",
    "NodeFrontier",
    "NodeFrontierPoint",
    "allocate_pool",
    "allocation_summary",
    "greedy_marginal_allocation",
    "greedy_marginal_allocation_reference",
    "maxmin_allocation",
    "maxmin_allocation_reference",
    "pool_allocation_summary",
    "uniform_allocation",
]
