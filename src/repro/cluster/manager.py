"""The cluster power manager: budget in, per-node caps out, epochs run.

Ties the pieces together into the paper's motivating scenario: a
system-level power budget is repeatedly divided among nodes ("power
constraints will be passed down through the machine hierarchy", paper
Section I), each node runs its application under its cap with the
adaptive runtime, and the manager accounts what actually happened.
Budgets may change between epochs; reallocation costs only frontier
arithmetic, never kernel executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal, Mapping, Sequence

from repro.cluster.allocation import (
    greedy_marginal_allocation,
    maxmin_allocation,
    uniform_allocation,
)
from repro.cluster.faults import CLUSTER_FAULT_KINDS, ClusterFaultPlan
from repro.cluster.node import ClusterNode, NodeFrontier
from repro.constants import respects_cap
from repro.runtime.trace import ApplicationTrace
from repro.telemetry import counter, gauge

__all__ = ["EpochResult", "ClusterReport", "ClusterPowerManager"]

AllocationPolicy = Literal["uniform", "greedy", "maxmin"]

_FAULT_COUNTS = {
    kind: counter(f"faults.cluster.{kind}") for kind in CLUSTER_FAULT_KINDS
}
_FAULT_UNKNOWN = counter("faults.cluster.unknown_node")
_EPOCHS_DEGRADED = counter("faults.cluster.epochs_degraded")

_EPOCHS = counter("cluster.epochs")
_EPOCH_BUDGET = gauge("cluster.epoch.budget_w")
_EPOCH_POWER = gauge("cluster.epoch.power_w")
_EPOCH_RATE = gauge("cluster.epoch.rate")
_EPOCH_NODES = gauge("cluster.epoch.nodes")
_EPOCH_OVER_BUDGET = gauge("cluster.epoch.over_budget_w")


@dataclass(frozen=True)
class EpochResult:
    """Outcome of one manager epoch.

    Attributes
    ----------
    epoch:
        Epoch index.
    budget_w:
        The global budget this epoch.
    caps_w:
        Per-node caps the allocator produced.
    traces:
        Per-node execution traces for the epoch's timesteps.
    """

    epoch: int
    budget_w: float
    caps_w: Mapping[str, float]
    traces: Mapping[str, ApplicationTrace]

    @property
    def total_timesteps(self) -> int:
        """Timesteps executed across all nodes this epoch."""
        return sum(t.timesteps() for t in self.traces.values())

    @property
    def cluster_power_w(self) -> float:
        """Sum of the nodes' time-averaged powers during the epoch."""
        return sum(t.mean_power_w for t in self.traces.values())

    @property
    def within_budget(self) -> bool:
        """Whether realized cluster power met the epoch budget (shared
        :data:`repro.constants.CAP_EPSILON` tolerance)."""
        return respects_cap(self.cluster_power_w, self.budget_w)

    @property
    def aggregate_rate(self) -> float:
        """Sum of node timestep rates during the epoch (throughput view:
        nodes run concurrently, so their rates add)."""
        return sum(
            t.timesteps() / t.total_time_s for t in self.traces.values()
        )

    @property
    def makespan_s(self) -> float:
        """Epoch wall time: the slowest node's execution time (zero if
        every node was lost to faults this epoch)."""
        return max((t.total_time_s for t in self.traces.values()), default=0.0)


@dataclass
class ClusterReport:
    """Accumulated results of a managed run."""

    policy: str
    epochs: list[EpochResult] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        """Cluster wall time: nodes run in parallel, so each epoch costs
        the slowest node's time."""
        return sum(e.makespan_s for e in self.epochs)

    @property
    def total_node_seconds(self) -> float:
        """Aggregate busy time across nodes (throughput view)."""
        return sum(
            t.total_time_s for e in self.epochs for t in e.traces.values()
        )

    @property
    def total_energy_j(self) -> float:
        """Total energy across all epochs and nodes (joules)."""
        return sum(
            t.total_energy_j for e in self.epochs for t in e.traces.values()
        )

    @property
    def mean_aggregate_rate(self) -> float:
        """Mean over epochs of the cluster's aggregate timestep rate."""
        if not self.epochs:
            return float("nan")
        return sum(e.aggregate_rate for e in self.epochs) / len(self.epochs)

    def budget_compliance(self) -> float:
        """Fraction of epochs whose realized cluster power met the budget."""
        if not self.epochs:
            return float("nan")
        return sum(e.within_budget for e in self.epochs) / len(self.epochs)


class ClusterPowerManager:
    """Allocates a global budget across nodes and runs them in epochs.

    Parameters
    ----------
    nodes:
        The cluster's nodes (names must be unique).
    policy:
        ``"greedy"`` (throughput-maximizing water-filling, default),
        ``"maxmin"`` (makespan-friendly max-min fairness), or
        ``"uniform"``.
    fault_plan:
        Optional :class:`~repro.cluster.faults.ClusterFaultPlan`
        scheduled on the epoch clock: dead/leaving nodes are dropped
        from allocation and execution (their budget redistributes to
        the survivors), stale-frontier nodes are allocated from their
        floor point only.  Every applied event increments a
        ``faults.cluster.*`` counter.
    """

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        *,
        policy: AllocationPolicy = "greedy",
        fault_plan: ClusterFaultPlan | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        if policy not in ("uniform", "greedy", "maxmin"):
            raise ValueError(f"unknown allocation policy {policy!r}")
        self.nodes = {n.name: n for n in nodes}
        self.policy = policy
        self.fault_plan = (
            fault_plan if fault_plan is not None else ClusterFaultPlan()
        )
        self._frontiers: dict[str, NodeFrontier] | None = None

    def frontiers(self) -> dict[str, NodeFrontier]:
        """Each node's predicted frontier (warmup runs happen here)."""
        if self._frontiers is None:
            self._frontiers = {
                name: node.frontier() for name, node in self.nodes.items()
            }
        return self._frontiers

    def _effective_frontiers(
        self, epoch: int
    ) -> tuple[dict[str, NodeFrontier], set[str]]:
        """The frontiers the allocator may trust at ``epoch``, after the
        fault plan: returns ``(frontiers, lost_nodes)`` where lost nodes
        are dead or departed and must not execute."""
        frontiers = dict(self.frontiers())
        lost: set[str] = set()
        degraded = False
        for ev in self.fault_plan.active_events(epoch):
            if ev.node not in self.nodes:
                _FAULT_UNKNOWN.inc()
                continue
            _FAULT_COUNTS[ev.kind].inc()
            degraded = True
            if ev.kind in ("node_dead", "node_leave"):
                frontiers.pop(ev.node, None)
                lost.add(ev.node)
            else:  # stale_frontier
                if ev.node in frontiers:
                    stale = frontiers[ev.node]
                    frontiers[ev.node] = NodeFrontier([stale.points[0]])
        if degraded:
            _EPOCHS_DEGRADED.inc()
        return frontiers, lost

    def allocate(
        self,
        budget_w: float,
        frontiers: Mapping[str, NodeFrontier] | None = None,
    ) -> dict[str, float]:
        """Split the budget into per-node caps under the active policy."""
        if frontiers is None:
            frontiers = self.frontiers()
        if self.policy == "uniform":
            return uniform_allocation(budget_w, frontiers)
        if self.policy == "maxmin":
            return maxmin_allocation(budget_w, frontiers)
        return greedy_marginal_allocation(budget_w, frontiers)

    def run(
        self,
        budgets_w: Sequence[float] | Callable[[int], float],
        *,
        n_epochs: int,
        timesteps_per_epoch: int,
        monitor=None,
    ) -> ClusterReport:
        """Run the cluster for ``n_epochs`` epochs.

        ``budgets_w`` is either a per-epoch sequence (length
        ``n_epochs``) or a function of the epoch index.

        ``monitor`` (a :class:`repro.telemetry.monitor.Monitor`) gets
        one tick per epoch on the epoch clock — the simulation analogue
        of the serve CLI's interval thread — so SLOs like budget
        compliance and degraded-epoch rate are judged per epoch.
        """
        if n_epochs < 1 or timesteps_per_epoch < 1:
            raise ValueError("n_epochs and timesteps_per_epoch must be >= 1")
        if not callable(budgets_w) and len(budgets_w) != n_epochs:
            raise ValueError("budgets_w sequence must have n_epochs entries")

        report = ClusterReport(policy=self.policy)
        for epoch in range(n_epochs):
            budget = float(
                budgets_w(epoch) if callable(budgets_w) else budgets_w[epoch]
            )
            frontiers, lost = self._effective_frontiers(epoch)
            caps = self.allocate(budget, frontiers) if frontiers else {}
            traces = {
                name: self.nodes[name].run(timesteps_per_epoch, caps[name])
                for name in caps
                if name not in lost
            }
            result = EpochResult(
                epoch=epoch, budget_w=budget, caps_w=caps, traces=traces
            )
            report.epochs.append(result)
            _EPOCHS.inc()
            _EPOCH_BUDGET.set(budget)
            _EPOCH_POWER.set(result.cluster_power_w)
            _EPOCH_RATE.set(result.aggregate_rate)
            _EPOCH_NODES.set(float(len(traces)))
            # Honour the shared CAP_EPSILON tolerance: a compliant epoch
            # reads exactly 0.0 so the default <= 0 SLO stays quiet.
            _EPOCH_OVER_BUDGET.set(
                0.0
                if result.within_budget
                else result.cluster_power_w - budget
            )
            if monitor is not None:
                monitor.tick(t=float(epoch))
        return report
