"""Cluster-level power allocation policies.

Given a global power budget and each node's predicted rate-vs-cap
frontier (:class:`~repro.cluster.node.NodeFrontier`), an allocation
policy splits the budget into per-node caps.  Two policies are
provided:

* :func:`uniform_allocation` — the state of the practice: every node
  gets ``budget / n`` regardless of what it runs;
* :func:`greedy_marginal_allocation` — frontier-aware water-filling:
  start every node at its lowest frontier point, then repeatedly grant
  the frontier step with the best marginal rate-per-watt until the
  budget is exhausted.  For concave frontiers this greedy is optimal
  for the *aggregate throughput* objective; for the mildly non-concave
  frontiers real kernels produce it is the standard near-optimal
  heuristic;
* :func:`maxmin_allocation` — frontier-aware max-min fairness:
  repeatedly grant the next frontier step to the node with the lowest
  current predicted rate.  This balances progress across nodes, the
  right objective when the cluster's figure of merit is *makespan*
  (every node must finish).

This realizes the paper's framing that node-level predicted frontiers
are "a key ingredient" for cluster-level power management: the
allocator never runs a kernel — it only reads predictions.
"""

from __future__ import annotations

import heapq
from typing import Mapping, Sequence

from repro.cluster.node import NodeFrontier

__all__ = [
    "uniform_allocation",
    "greedy_marginal_allocation",
    "maxmin_allocation",
    "allocation_summary",
]


def _check_budget(budget_w: float, n: int) -> None:
    if n == 0:
        raise ValueError("no nodes to allocate to")
    if budget_w <= 0:
        raise ValueError("budget_w must be positive")


def uniform_allocation(
    budget_w: float, frontiers: Mapping[str, NodeFrontier]
) -> dict[str, float]:
    """Split the budget evenly across nodes (cap-blind baseline)."""
    _check_budget(budget_w, len(frontiers))
    share = budget_w / len(frontiers)
    return {name: share for name in frontiers}


def greedy_marginal_allocation(
    budget_w: float, frontiers: Mapping[str, NodeFrontier]
) -> dict[str, float]:
    """Water-filling on predicted node frontiers.

    Every node first receives its minimum frontier cap (a node cannot
    be powered off; if even the minima exceed the budget, the caps are
    scaled down proportionally and all nodes run their floor
    configurations over-budget — the least-bad outcome, reported
    honestly by :func:`allocation_summary`).  The remaining budget is
    spent one frontier step at a time, always on the step with the
    highest marginal rate per watt.
    """
    _check_budget(budget_w, len(frontiers))
    caps = {name: f.min_cap_w for name, f in frontiers.items()}
    spent = sum(caps.values())
    if spent >= budget_w:
        scale = budget_w / spent
        return {name: cap * scale for name, cap in caps.items()}

    # Per-node iterator over frontier steps, consumed in global
    # best-marginal order via a heap.  Steps within one node must be
    # taken in order (caps only grow), which the per-node cursor
    # guarantees.
    step_lists = {name: f.steps() for name, f in frontiers.items()}
    cursors = {name: 0 for name in frontiers}
    heap: list[tuple[float, str]] = []

    def push(name: str) -> None:
        i = cursors[name]
        steps = step_lists[name]
        if i < len(steps):
            extra_power, extra_rate, _ = steps[i]
            if extra_power <= 0:
                # Degenerate zero-cost step: take it immediately.
                cursors[name] += 1
                caps[name] = steps[i][2]
                push(name)
                return
            heapq.heappush(heap, (-extra_rate / extra_power, name))

    for name in frontiers:
        push(name)

    remaining = budget_w - spent
    while heap:
        neg_utility, name = heapq.heappop(heap)
        i = cursors[name]
        extra_power, extra_rate, new_cap = step_lists[name][i]
        if extra_power > remaining:
            continue  # cannot afford this node's next step; try others
        remaining -= extra_power
        caps[name] = new_cap
        cursors[name] += 1
        push(name)
    return caps


def maxmin_allocation(
    budget_w: float, frontiers: Mapping[str, NodeFrontier]
) -> dict[str, float]:
    """Max-min-fair water-filling: always lift the slowest node.

    Every node starts at its floor (scaled down proportionally if even
    the floors exceed the budget, as in
    :func:`greedy_marginal_allocation`); then, while budget remains,
    the node with the lowest current predicted rate takes its next
    affordable frontier step.  Ties break deterministically by node
    name.
    """
    _check_budget(budget_w, len(frontiers))
    caps = {name: f.min_cap_w for name, f in frontiers.items()}
    spent = sum(caps.values())
    if spent >= budget_w:
        scale = budget_w / spent
        return {name: cap * scale for name, cap in caps.items()}

    step_lists = {name: f.steps() for name, f in frontiers.items()}
    cursors = {name: 0 for name in frontiers}
    rates = {name: f.points[0].rate for name, f in frontiers.items()}
    remaining = budget_w - spent
    # Nodes whose next step is unaffordable or exhausted drop out.
    active = set(frontiers)
    while active:
        name = min(active, key=lambda n: (rates[n], n))
        i = cursors[name]
        steps = step_lists[name]
        if i >= len(steps):
            active.discard(name)
            continue
        extra_power, extra_rate, new_cap = steps[i]
        if extra_power > remaining:
            active.discard(name)
            continue
        remaining -= extra_power
        caps[name] = new_cap
        rates[name] += extra_rate
        cursors[name] += 1
    return caps


def allocation_summary(
    caps: Mapping[str, float],
    frontiers: Mapping[str, NodeFrontier],
    budget_w: float,
) -> dict[str, float]:
    """Predicted cluster outcome of an allocation.

    Returns aggregate predicted rate (sum over nodes), predicted power,
    budget, and slack.
    """
    if set(caps) != set(frontiers):
        raise ValueError("caps and frontiers must cover the same nodes")
    rate = 0.0
    power = 0.0
    for name, cap in caps.items():
        point = frontiers[name].at_cap(cap)
        rate += point.rate
        power += point.expected_power_w
    return {
        "predicted_rate": rate,
        "predicted_power_w": power,
        "budget_w": budget_w,
        "slack_w": budget_w - sum(caps.values()),
    }
