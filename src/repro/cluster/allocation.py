"""Cluster-level power allocation policies, vectorized for fleet scale.

Given a global power budget and each node's predicted rate-vs-cap
frontier, an allocation policy splits the budget into per-node caps.
Three policies are provided:

* :func:`uniform_allocation` — the state of the practice: every node
  gets ``budget / n`` regardless of what it runs;
* :func:`greedy_marginal_allocation` — frontier-aware water-filling:
  start every node at its lowest frontier point, then repeatedly grant
  the frontier step with the best marginal rate-per-watt until the
  budget is exhausted.  For concave frontiers this greedy is optimal
  for the *aggregate throughput* objective; for the mildly non-concave
  frontiers real kernels produce it is the standard near-optimal
  heuristic;
* :func:`maxmin_allocation` — frontier-aware max-min fairness:
  repeatedly grant the next frontier step to the node with the lowest
  current predicted rate — the right objective when the cluster's
  figure of merit is *makespan* (every node must finish).

The public functions keep their original dict-in/dict-out signatures
but now run on :class:`~repro.cluster.pool.FrontierPool` kernels, so
the same call that splits 72 W over 4 nodes splits a datacenter budget
over 100k.  The engine:

* **greedy** — one global argsort of the steps' *exposure utility* (the
  running minimum of marginal rate-per-watt along each frontier, which
  provably reproduces the reference heap's pop order, name ties
  included), then a vectorized prefix-sum budget cut plus a short
  sequential boundary fix-up that replays the reference's
  drop-unaffordable-node rule from the cut point on;
* **maxmin** — the reference always lifts the node with the lowest
  current rate, and rates only grow, so the taken sequence is exactly
  all steps sorted by their *pre-step* rate: same cut + fix-up kernel,
  different sort key.  Whole cohorts of lowest-rate nodes are lifted by
  one prefix cut instead of one ``min()`` scan per step.

Both kernels are validated step-for-step against the retained
references (:func:`greedy_marginal_allocation_reference`,
:func:`maxmin_allocation_reference`) — bit-identical caps on the
4-node benchmark suite and on Hypothesis-random frontiers.

This realizes the paper's framing that node-level predicted frontiers
are "a key ingredient" for cluster-level power management: the
allocator never runs a kernel — it only reads predictions.
"""

from __future__ import annotations

import heapq
from typing import Mapping

import numpy as np

from repro.cluster.node import NodeFrontier
from repro.cluster.pool import FrontierPool
from repro.telemetry import counter, histogram, trace_span

__all__ = [
    "uniform_allocation",
    "greedy_marginal_allocation",
    "maxmin_allocation",
    "allocation_summary",
    "allocate_pool",
    "pool_allocation_summary",
    "greedy_marginal_allocation_reference",
    "maxmin_allocation_reference",
]

_ALLOC_CALLS = {
    policy: counter(f"cluster.alloc.calls.{policy}")
    for policy in ("uniform", "greedy", "maxmin")
}
_ALLOC_NODES = counter("cluster.alloc.nodes")
_ALLOC_STEPS = counter("cluster.alloc.steps_taken")
_ALLOC_FIXUP = counter("cluster.alloc.fixup_steps")
_ALLOC_FLOOR_SCALED = counter("cluster.alloc.floor_scaled")
_ALLOC_S = histogram("cluster.alloc.s")


def _check_budget(budget_w: float, n: int) -> None:
    if n == 0:
        raise ValueError("no nodes to allocate to")
    if budget_w <= 0:
        raise ValueError("budget_w must be positive")


def uniform_allocation(
    budget_w: float, frontiers: Mapping[str, NodeFrontier]
) -> dict[str, float]:
    """Split the budget evenly across nodes (cap-blind baseline)."""
    _check_budget(budget_w, len(frontiers))
    _ALLOC_CALLS["uniform"].inc()
    _ALLOC_NODES.inc(len(frontiers))
    share = budget_w / len(frontiers)
    return {name: share for name in frontiers}


# -- the vectorized consumption kernel ---------------------------------------


def _consume_steps(
    view, policy: str, remaining: float
) -> tuple[np.ndarray, int, int]:
    """Take frontier steps in ``policy`` order until the budget is dry.

    Returns ``(per-node taken-step counts, steps taken, fix-up
    rounds)``.  The bulk of the work is one prefix-sum cut over the
    cached sorted order; the boundary fix-up then replays the
    reference semantics in vectorized rounds over per-node cursors: a
    node whose next exposed step is unaffordable is dropped (its later
    steps are skipped), the earliest-ordered affordable candidate is
    taken, and each round costs O(nodes) instead of one Python
    iteration per skipped step — the round count is bounded by the
    number of steps the leftover budget can still buy.
    """
    _perm, sp, sn, cum, grouped, goff, gkeys, span = view.order_bundle(policy)
    n_steps = sp.size
    n_nodes = view.n_nodes
    k = int(np.searchsorted(cum, remaining, side="right"))
    taken = np.zeros(n_steps, dtype=bool)
    taken[:k] = True
    if k:
        remaining -= float(cum[k - 1])
    counts = np.bincount(sn[:k], minlength=n_nodes)
    fixup = 0
    if k < n_steps:
        # Candidate rounds over per-node cursors.  Every node's first
        # pending step (its position >= k in sorted order) comes from
        # one shifted searchsorted; each round drops every node whose
        # candidate no longer fits (valid early: the budget only
        # shrinks, so today's unaffordable step is unaffordable at its
        # turn too) and takes the earliest-ordered affordable candidate
        # — exactly the reference's visit order, one O(n) round per
        # taken step instead of one Python iteration per skipped one.
        node_ids = np.arange(n_nodes)
        start = np.searchsorted(gkeys, k + span * node_ids, side="left")
        exhausted = start >= goff[1:]
        cand_pos = np.where(exhausted, n_steps, grouped[np.minimum(start, n_steps - 1)])
        cand_power = np.where(exhausted, np.inf, sp[np.minimum(cand_pos, n_steps - 1)])
        cursor = start
        while True:
            fixup += 1
            live = cand_power > remaining
            if live.any():
                # Drop: exhaust every node whose next step is unaffordable.
                cand_pos = np.where(live, n_steps, cand_pos)
                cand_power = np.where(live, np.inf, cand_power)
            j = int(cand_pos.argmin())
            pos = int(cand_pos[j])
            if pos >= n_steps:
                break
            remaining -= float(sp[pos])
            taken[pos] = True
            counts[j] += 1
            cursor[j] += 1
            if cursor[j] < goff[j + 1]:
                nxt = int(grouped[cursor[j]])
                cand_pos[j] = nxt
                cand_power[j] = sp[nxt]
            else:
                cand_pos[j] = n_steps
                cand_power[j] = np.inf
    return counts, int(np.count_nonzero(taken)), fixup


def _allocate_view(view, policy: str, budget_w: float, spent: float) -> np.ndarray:
    """Per-node caps for an active view, floors already summed into
    ``spent`` (callers choose the summation order so the dict API stays
    bit-identical to the references)."""
    floors = view.floors()
    if spent >= budget_w:
        _ALLOC_FLOOR_SCALED.inc()
        scale = budget_w / spent
        return floors * scale
    counts, steps, fixup = _consume_steps(view, policy, budget_w - spent)
    _ALLOC_STEPS.inc(steps)
    _ALLOC_FIXUP.inc(fixup)
    return view.caps[view.offsets[:-1] + counts]


def allocate_pool(
    pool: FrontierPool, budget_w: float, policy: str = "greedy"
) -> np.ndarray:
    """Split ``budget_w`` across a pool's active nodes.

    The fleet-scale entry point: returns a caps array aligned with
    ``pool.active_names()``.  ``policy`` is ``"uniform"``, ``"greedy"``,
    or ``"maxmin"`` with exactly the semantics of the dict-level
    functions.
    """
    _check_budget(budget_w, pool.n_active)
    if policy not in ("uniform", "greedy", "maxmin"):
        raise ValueError(f"unknown allocation policy {policy!r}")
    _ALLOC_CALLS[policy].inc()
    _ALLOC_NODES.inc(pool.n_active)
    with trace_span("cluster/allocate"), _ALLOC_S.time():
        view = pool.view()
        if policy == "uniform":
            return np.full(view.n_nodes, budget_w / view.n_nodes)
        spent = float(np.sum(view.floors()))
        return _allocate_view(view, policy, budget_w, spent)


def _allocate_dict(
    budget_w: float, frontiers: Mapping[str, NodeFrontier], policy: str
) -> dict[str, float]:
    """Dict-level frontend: bit-identical to the retained references.

    The floor sum runs sequentially in mapping order (matching the
    references' ``sum()``), so even the infeasible-budget scale factor
    rounds identically.
    """
    _check_budget(budget_w, len(frontiers))
    _ALLOC_CALLS[policy].inc()
    _ALLOC_NODES.inc(len(frontiers))
    with trace_span("cluster/allocate"), _ALLOC_S.time():
        pool = FrontierPool.from_frontiers(frontiers)
        spent = sum(f.min_cap_w for f in frontiers.values())
        caps = _allocate_view(pool.view(), policy, budget_w, spent)
        return dict(zip(frontiers, caps.tolist()))


def greedy_marginal_allocation(
    budget_w: float, frontiers: Mapping[str, NodeFrontier]
) -> dict[str, float]:
    """Water-filling on predicted node frontiers.

    Every node first receives its minimum frontier cap (a node cannot
    be powered off; if even the minima exceed the budget, the caps are
    scaled down proportionally and all nodes run their floor
    configurations over-budget — the least-bad outcome, reported
    honestly by :func:`allocation_summary`).  The remaining budget is
    spent one frontier step at a time, always on the step with the
    highest marginal rate per watt — computed here by the vectorized
    kernel, bit-identical to
    :func:`greedy_marginal_allocation_reference`.
    """
    return _allocate_dict(budget_w, frontiers, "greedy")


def maxmin_allocation(
    budget_w: float, frontiers: Mapping[str, NodeFrontier]
) -> dict[str, float]:
    """Max-min-fair water-filling: always lift the slowest node.

    Every node starts at its floor (scaled down proportionally if even
    the floors exceed the budget, as in
    :func:`greedy_marginal_allocation`); then, while budget remains,
    the node with the lowest current predicted rate takes its next
    affordable frontier step.  Ties break deterministically by node
    name.  Vectorized, bit-identical to
    :func:`maxmin_allocation_reference`.
    """
    return _allocate_dict(budget_w, frontiers, "maxmin")


def allocation_summary(
    caps: Mapping[str, float],
    frontiers: Mapping[str, NodeFrontier],
    budget_w: float,
) -> dict[str, float]:
    """Predicted cluster outcome of an allocation.

    Returns aggregate predicted rate (sum over nodes), predicted power,
    budget, and slack.
    """
    if set(caps) != set(frontiers):
        raise ValueError("caps and frontiers must cover the same nodes")
    rate = 0.0
    power = 0.0
    for name, cap in caps.items():
        point = frontiers[name].at_cap(cap)
        rate += point.rate
        power += point.expected_power_w
    return {
        "predicted_rate": rate,
        "predicted_power_w": power,
        "budget_w": budget_w,
        "slack_w": budget_w - sum(caps.values()),
    }


def pool_allocation_summary(
    pool: FrontierPool, caps_w: np.ndarray, budget_w: float
) -> dict[str, float]:
    """Vectorized :func:`allocation_summary` over a pool's active nodes
    (one batched ``at_caps`` instead of a per-node Python loop)."""
    _, powers, rates = pool.at_caps(caps_w)
    return {
        "predicted_rate": float(rates.sum()),
        "predicted_power_w": float(powers.sum()),
        "budget_w": budget_w,
        "slack_w": budget_w - float(np.sum(caps_w)),
    }


# -- retained pure-Python references ------------------------------------------
#
# The pre-vectorization implementations, kept verbatim: the golden
# semantics the kernels must reproduce step for step (tests pin
# bit-identical caps) and the baseline the scale benchmark measures its
# speedup against.


def greedy_marginal_allocation_reference(
    budget_w: float, frontiers: Mapping[str, NodeFrontier]
) -> dict[str, float]:
    """Heap-based water-filling (pure Python, one pop per step)."""
    _check_budget(budget_w, len(frontiers))
    caps = {name: f.min_cap_w for name, f in frontiers.items()}
    spent = sum(caps.values())
    if spent >= budget_w:
        scale = budget_w / spent
        return {name: cap * scale for name, cap in caps.items()}

    # Per-node iterator over frontier steps, consumed in global
    # best-marginal order via a heap.  Steps within one node must be
    # taken in order (caps only grow), which the per-node cursor
    # guarantees.
    step_lists = {name: f.steps() for name, f in frontiers.items()}
    cursors = {name: 0 for name in frontiers}
    heap: list[tuple[float, str]] = []

    def push(name: str) -> None:
        i = cursors[name]
        steps = step_lists[name]
        if i < len(steps):
            extra_power, extra_rate, _ = steps[i]
            if extra_power <= 0:
                # Degenerate zero-cost step: take it immediately.
                cursors[name] += 1
                caps[name] = steps[i][2]
                push(name)
                return
            heapq.heappush(heap, (-extra_rate / extra_power, name))

    for name in frontiers:
        push(name)

    remaining = budget_w - spent
    while heap:
        neg_utility, name = heapq.heappop(heap)
        i = cursors[name]
        extra_power, extra_rate, new_cap = step_lists[name][i]
        if extra_power > remaining:
            continue  # cannot afford this node's next step; try others
        remaining -= extra_power
        caps[name] = new_cap
        cursors[name] += 1
        push(name)
    return caps


def maxmin_allocation_reference(
    budget_w: float, frontiers: Mapping[str, NodeFrontier]
) -> dict[str, float]:
    """Scan-based max-min (pure Python, one ``min()`` per step)."""
    _check_budget(budget_w, len(frontiers))
    caps = {name: f.min_cap_w for name, f in frontiers.items()}
    spent = sum(caps.values())
    if spent >= budget_w:
        scale = budget_w / spent
        return {name: cap * scale for name, cap in caps.items()}

    step_lists = {name: f.steps() for name, f in frontiers.items()}
    cursors = {name: 0 for name in frontiers}
    rates = {name: f.points[0].rate for name, f in frontiers.items()}
    remaining = budget_w - spent
    # Nodes whose next step is unaffordable or exhausted drop out.
    active = set(frontiers)
    while active:
        name = min(active, key=lambda n: (rates[n], n))
        i = cursors[name]
        steps = step_lists[name]
        if i >= len(steps):
            active.discard(name)
            continue
        extra_power, extra_rate, new_cap = steps[i]
        if extra_power > remaining:
            active.discard(name)
            continue
        remaining -= extra_power
        caps[name] = new_cap
        rates[name] += extra_rate
        cursors[name] += 1
    return caps
