"""Cluster nodes and their application-level power-performance frontiers.

The paper's introduction frames the node-level model as "a key
ingredient to maximizing performance on a multi-node cluster": system-
wide power policies "filter down from the system level to individual
nodes", and each node must make the most of whatever budget it is
handed.  A :class:`ClusterNode` is one such node — its own simulated
APU, profiling library, application, and adaptive runtime — plus the
quantity the cluster-level allocator needs: an **application-level
frontier** built purely from the node's *predicted* kernel frontiers.

The application-level frontier answers: "if this node's cap were c,
what timestep rate would it sustain, and what average power would it
draw?"  It is assembled by sweeping candidate caps over the union of
per-kernel predicted power levels; at each cap every kernel contributes
its best predicted-feasible configuration's time and energy.  No
execution happens during assembly — exactly the property (Section
III-C) that makes model predictions suitable for higher-level
schedulers.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.constants import CAP_EPSILON
from repro.core.model import AdaptiveModel
from repro.core.predictor import KernelPrediction
from repro.core.sample_configs import CPU_SAMPLE, GPU_SAMPLE
from repro.hardware.apu import TrinityAPU
from repro.profiling.library import ProfilingLibrary
from repro.runtime.adaptive import AdaptiveRuntime
from repro.runtime.application import Application
from repro.runtime.trace import ApplicationTrace

__all__ = ["NodeFrontierPoint", "NodeFrontier", "ClusterNode"]


@dataclass(frozen=True)
class NodeFrontierPoint:
    """One feasible node operating point under some cap.

    Attributes
    ----------
    cap_w:
        The node cap that produces this operating point.
    expected_power_w:
        Predicted time-weighted average node power at that cap.
    rate:
        Predicted timestep throughput (timesteps per second).
    """

    cap_w: float
    expected_power_w: float
    rate: float


class NodeFrontier:
    """The node's predicted rate-vs-cap curve, sorted by cap ascending.

    Guaranteed monotone: raising the cap never lowers the predicted
    rate (the scheduler's feasible set only grows).
    """

    def __init__(self, points: list[NodeFrontierPoint]) -> None:
        if not points:
            raise ValueError("node frontier needs at least one point")
        pts = sorted(points, key=lambda p: p.cap_w)
        # Enforce rate monotonicity (guards against prediction jitter).
        cleaned: list[NodeFrontierPoint] = []
        best = -1.0
        for p in pts:
            if p.rate > best:
                cleaned.append(p)
                best = p.rate
        self.points: tuple[NodeFrontierPoint, ...] = tuple(cleaned)
        self._caps: list[float] = [p.cap_w for p in cleaned]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def min_cap_w(self) -> float:
        """The node's floor: the smallest honourable cap."""
        return self.points[0].cap_w

    def at_cap(self, cap_w: float) -> NodeFrontierPoint:
        """The best operating point with ``cap_w`` of budget (the lowest
        point if even that is infeasible — a node cannot turn off).

        O(log n): caps are sorted, and ``respects_cap``'s relative
        tolerance is a fixed threshold for a given ``cap_w``, so the
        linear feasibility scan is a single bisection over the caps.
        A NaN cap admits nothing (as in the original scan) and falls
        back to the floor.
        """
        thresh = cap_w * (1.0 + CAP_EPSILON)
        if math.isnan(thresh):
            return self.points[0]
        idx = bisect_right(self._caps, thresh) - 1
        return self.points[idx if idx >= 0 else 0]

    def steps(self) -> list[tuple[float, float, float]]:
        """Successive frontier increments as ``(extra_power_w,
        extra_rate, cap_w)`` triples — the allocator's marginal menu."""
        out = []
        for a, b in zip(self.points, self.points[1:]):
            out.append((b.cap_w - a.cap_w, b.rate - a.rate, b.cap_w))
        return out


class ClusterNode:
    """One node of the simulated cluster.

    Parameters
    ----------
    name:
        Node identifier.
    application:
        The application this node runs.
    model:
        The machine's trained adaptive model (shared across identical
        nodes — the offline stage runs once per machine type).
    apu:
        The node's machine (defaults to a fresh one seeded by ``seed``).
    seed:
        Seed for this node's measurement streams.
    """

    def __init__(
        self,
        name: str,
        application: Application,
        model: AdaptiveModel,
        *,
        apu: TrinityAPU | None = None,
        seed: int = 0,
    ) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        self.name = name
        self.application = application
        self.model = model
        self.apu = apu if apu is not None else TrinityAPU(seed=seed)
        self.library = ProfilingLibrary(self.apu, seed=seed)
        self.runtime = AdaptiveRuntime(model, self.library)
        self._predictions: dict[str, KernelPrediction] | None = None

    # -- prediction warmup -------------------------------------------------------

    def warm_up(self) -> None:
        """Run each kernel's two sample iterations and cache predictions
        (the first two application timesteps do this implicitly; the
        cluster manager calls it eagerly so allocation can precede the
        first scheduled timestep)."""
        if self._predictions is not None:
            return
        predictions: dict[str, KernelPrediction] = {}
        for kernel in self.application.kernels:
            cpu_m = self.library.profile(kernel, CPU_SAMPLE).measurement
            gpu_m = self.library.profile(kernel, GPU_SAMPLE).measurement
            predictions[kernel.uid] = self.model.predict_kernel(
                cpu_m, gpu_m, kernel_uid=kernel.uid
            )
        self._predictions = predictions
        # Share the sample runs with the runtime's own protocol.
        self.runtime._predictions.update(predictions)

    def predictions(self) -> dict[str, KernelPrediction]:
        """Cached per-kernel predictions (warming up if needed)."""
        self.warm_up()
        assert self._predictions is not None
        return self._predictions

    # -- application-level frontier -----------------------------------------------

    def frontier(self) -> NodeFrontier:
        """Assemble the node's predicted rate-vs-cap frontier.

        Candidate caps below the node's *floor* — the largest of the
        per-kernel minimum predicted powers — are excluded: under such a
        cap some kernel has no feasible configuration at all, so the
        node cannot honour it (every kernel must run somewhere,
        Section III-A).  Consequently every frontier point satisfies
        ``expected_power_w <= cap_w``.

        The whole sweep is array arithmetic: each kernel's predicted
        frontier is built once, every candidate cap resolves against it
        with one vectorized binary search, and the per-cap time/energy
        totals accumulate kernel-by-kernel over the cap axis.
        """
        predictions = self.predictions()
        floor = max(
            float(pred.power_array.min()) for pred in predictions.values()
        )
        # Round candidate caps *up*: rounding down could land a cap
        # between the floor and the power level that generated it,
        # making the floor kernel infeasible at its own candidate.
        caps = np.array(
            sorted(
                {
                    math.ceil(float(pw) * 1e6) / 1e6
                    for pred in predictions.values()
                    for pw in pred.power_array
                    if pw >= floor - 1e-9
                }
            )
        )
        total_time = np.zeros(caps.size)
        total_energy = np.zeros(caps.size)
        for pred in predictions.values():
            frontier = pred.predicted_frontier()
            # Best feasible frontier point per cap; infeasible caps fall
            # back to the lowest-power point (index 0), matching
            # ``best_under_cap(...) or frontier[0]``.
            idx = np.maximum(frontier.indices_under_caps(caps), 0)
            t = 1.0 / frontier.performances[idx]
            total_time += t
            total_energy += frontier.powers[idx] * t
        points = [
            NodeFrontierPoint(
                cap_w=float(cap),
                expected_power_w=float(e / t),
                rate=float(1.0 / t),
            )
            for cap, t, e in zip(caps, total_time, total_energy)
        ]
        return NodeFrontier(points)

    # -- execution --------------------------------------------------------------

    def run(self, n_timesteps: int, cap_w: float) -> ApplicationTrace:
        """Execute the node's application under its allocated cap."""
        self.warm_up()
        return self.runtime.run(self.application, n_timesteps, cap_w)
