"""Array-backed frontier pools: the fleet-scale allocation substrate.

``repro.cluster`` was designed around per-node Python objects — a
``dict[str, NodeFrontier]`` per cluster and a Python loop per allocation
step.  That is the right *interface* at 4 nodes and the wrong *engine*
at 100k.  This module packs every node frontier of a fleet into flat
structure-of-arrays storage — the same treatment the prediction engine
gave configuration tables: one ``caps`` / ``rates`` / ``powers`` triple
of float64 arrays holding all frontier points back to back, with
CSR-style ``offsets`` marking where each node's segment starts.

On top of that layout:

* :meth:`FrontierPool.at_caps` answers "best operating point under this
  cap" for *every* node with one vectorized binary search (the scalar
  :meth:`~repro.cluster.node.NodeFrontier.at_cap` loop, batched);
* the allocation kernels (:mod:`repro.cluster.allocation`) read the
  pool's precomputed *step* arrays — marginal ``(extra power, extra
  rate)`` increments — and sorted consumption orders, turning
  water-filling into one argsort plus a prefix-sum budget cut;
* membership is dynamic: nodes leave (:meth:`FrontierPool.deactivate`),
  rejoin (:meth:`FrontierPool.activate`), or arrive
  (:meth:`FrontierPool.add_frontiers`) without rebuilding the packed
  arrays — derived views are invalidated by a version counter and
  recomputed lazily on the next allocation.

Pools come from real :class:`~repro.cluster.node.NodeFrontier`\\ s
(:meth:`FrontierPool.from_frontiers`) or are synthesized in bulk for
fleet-scale benchmarks (:meth:`FrontierPool.synthesize`), grounding the
hierarchical node → rack → row → datacenter topology of
:class:`~repro.cluster.tree.BudgetTree`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cluster.node import NodeFrontier, NodeFrontierPoint
from repro.constants import CAP_EPSILON

__all__ = ["FrontierPool"]


def _segmented_cummin(values: np.ndarray, seg_rank: np.ndarray) -> np.ndarray:
    """Running minimum of ``values`` within segments.

    ``seg_rank`` is each element's 0-based position inside its segment;
    segments are contiguous.  Hillis-Steele doubling: O(S log L) for S
    elements and maximum segment length L, all vectorized.
    """
    out = values.copy()
    if out.size == 0:
        return out
    max_rank = int(seg_rank.max())
    length = max_rank + 1
    if out.size % length == 0 and np.array_equal(
        seg_rank, np.tile(np.arange(length), out.size // length)
    ):
        # Uniform contiguous segments (synthesized fleets): a reshape
        # and one accumulate beat the doubling loop's fancy indexing.
        return np.minimum.accumulate(
            values.reshape(-1, length), axis=1
        ).reshape(-1)
    d = 1
    while d <= max_rank:
        idx = np.nonzero(seg_rank >= d)[0]
        # RHS gathers are evaluated before assignment (Jacobi update),
        # and over-wide windows are harmless for min, so this is exact.
        out[idx] = np.minimum(out[idx], out[idx - d])
        d *= 2
    return out


class _PoolView:
    """Immutable compacted view of a pool's *active* nodes.

    Holds the flat point arrays plus every derived structure the
    allocation kernels need — step arrays, per-policy sorted consumption
    orders with prefix sums, and the shifted key array behind
    :meth:`at_caps_indices`.  All derived pieces are computed lazily and
    cached; the owning pool throws the whole view away when membership
    changes.
    """

    __slots__ = (
        "names",
        "caps",
        "rates",
        "powers",
        "offsets",
        "point_node",
        "name_rank",
        "_steps",
        "_orders",
        "_keys",
        "_cap_max",
        "_shift",
    )

    def __init__(
        self,
        names: list[str],
        caps: np.ndarray,
        rates: np.ndarray,
        powers: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        self.names = names
        self.caps = caps
        self.rates = rates
        self.powers = powers
        self.offsets = offsets
        counts = np.diff(offsets)
        self.point_node = np.repeat(np.arange(len(names)), counts)
        # Heap/scan tie-breaks in the reference allocators compare node
        # *names* lexicographically; precompute each node's rank in
        # name-sorted order so the kernels can match them exactly.
        rank = np.empty(len(names), dtype=np.int64)
        rank[np.argsort(np.array(names, dtype=object), kind="stable")] = np.arange(
            len(names)
        )
        self.name_rank = rank
        self._steps: tuple[np.ndarray, ...] | None = None
        self._orders: dict[str, tuple] = {}
        self._keys: np.ndarray | None = None
        self._cap_max = 0.0
        self._shift = 1.0

    @property
    def n_nodes(self) -> int:
        return len(self.names)

    # -- floors -------------------------------------------------------------

    def floor_indices(self) -> np.ndarray:
        """Flat index of each node's lowest (floor) point."""
        return self.offsets[:-1]

    def floors(self) -> np.ndarray:
        """Each node's floor cap (its smallest honourable cap)."""
        return self.caps[self.offsets[:-1]]

    # -- steps --------------------------------------------------------------

    def steps(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The pool's marginal menu as flat arrays.

        Returns ``(node, power, rate, pre_rate, rank)``: owning node id,
        extra power and extra rate of the step, the node's rate *before*
        the step, and the step's 0-based position within its node.
        Steps of one node are contiguous and in frontier order.
        """
        if self._steps is None:
            counts = np.diff(self.offsets)
            if counts.size and bool(np.all(counts == counts[0])):
                # Uniform per-node point counts (every synthesized
                # fleet): pure reshape arithmetic, no fancy gathers.
                n, k = counts.size, int(counts[0])
                caps2d = self.caps.reshape(n, k)
                rates2d = self.rates.reshape(n, k)
                node = np.repeat(np.arange(n), k - 1)
                self._steps = (
                    node,
                    (caps2d[:, 1:] - caps2d[:, :-1]).reshape(-1),
                    (rates2d[:, 1:] - rates2d[:, :-1]).reshape(-1),
                    rates2d[:, :-1].reshape(-1),
                    np.tile(np.arange(k - 1), n),
                )
            else:
                intra = np.ones(self.caps.size, dtype=bool)
                intra[self.offsets[:-1]] = False
                idx = np.nonzero(intra)[0]
                node = self.point_node[idx]
                self._steps = (
                    node,
                    self.caps[idx] - self.caps[idx - 1],
                    self.rates[idx] - self.rates[idx - 1],
                    self.rates[idx - 1],
                    idx - self.offsets[node] - 1,
                )
        return self._steps

    def order_bundle(self, policy: str) -> tuple:
        """Sorted step consumption order for ``policy`` plus its prefix
        sums: ``(perm, power, node, cum_power, suffix_min_power)``.

        * ``greedy`` sorts by descending *exposure utility* — the running
          minimum of marginal rate-per-watt along each node's frontier —
          which provably reproduces the reference heap's pop order
          (ties: node name, then step position; zero-cost steps inherit
          their predecessor's key, or +inf at the segment head, matching
          the heap's take-immediately rule);
        * ``maxmin`` sorts by the rate each node has *before* the step —
          the reference always lifts the lowest-rate node, so the taken
          sequence is exactly the pre-step rates in ascending order
          (ties by name).
        """
        bundle = self._orders.get(policy)
        if bundle is None:
            node, power, rate, pre_rate, rank = self.steps()
            if policy == "greedy":
                utility = np.where(
                    power > 0.0,
                    rate / np.where(power > 0.0, power, 1.0),
                    np.inf,
                )
                key = -_segmented_cummin(utility, rank)
            elif policy == "maxmin":
                key = pre_rate
            else:  # pragma: no cover - internal misuse
                raise ValueError(f"unknown step order {policy!r}")
            # Both tie-break levels (name rank, then step position) fold
            # into one integer key: rank < max_rank + 1 by definition,
            # and the product stays far below 2**63 for any pool that
            # fits in memory.
            rank_span = int(rank.max()) + 1 if rank.size else 1
            tie = self.name_rank[node] * rank_span + rank
            perm = np.lexsort((tie, key))
            sp = power[perm]
            sn = node[perm]
            cum = np.cumsum(sp)
            # Node-grouped positions for the fix-up kernel: each node's
            # step positions in the sorted order, ascending.  Within a
            # node the sort keys are non-increasing with position-order
            # tie-breaks, so perm keeps step order — the plain inverse
            # permutation, laid out node-major like the step arrays, IS
            # the grouped table (no extra sort).  The shifted keys make
            # "first pending step of every node at cut k" one
            # searchsorted.
            grouped = np.empty(sp.size, dtype=np.int64)
            grouped[perm] = np.arange(sp.size)
            group_offsets = (self.offsets - np.arange(self.offsets.size)).astype(
                np.int64
            )
            span = sp.size + 1
            group_keys = grouped + span * node
            bundle = (perm, sp, sn, cum, grouped, group_offsets, group_keys, span)
            self._orders[policy] = bundle
        return bundle

    # -- vectorized at_cap --------------------------------------------------

    def at_caps_indices(self, caps_w: np.ndarray) -> np.ndarray:
        """Flat point index of the best operating point per node.

        Vectorized equivalent of calling
        :meth:`NodeFrontier.at_cap` once per node: one global
        ``searchsorted`` over a shifted key array in which node ``i``'s
        caps live in the band ``[i*shift, i*shift + cap_max]``.  Queries
        below a node's floor clamp to the floor (a node cannot turn
        off), exactly like the scalar fallback.
        """
        if caps_w.shape != (self.n_nodes,):
            raise ValueError(
                f"expected one cap per active node "
                f"({self.n_nodes}), got shape {caps_w.shape}"
            )
        if self._keys is None:
            self._cap_max = float(self.caps.max()) if self.caps.size else 0.0
            self._shift = max(1.0, self._cap_max * 1.001)
            self._keys = self.caps + self._shift * self.point_node
        thresh = caps_w * (1.0 + CAP_EPSILON)
        # NaN caps behave like the scalar scan: nothing is feasible, so
        # the floor wins.  Clip from above so huge budgets stay inside
        # the node's key band.
        thresh = np.where(np.isnan(thresh), -np.inf, thresh)
        thresh = np.minimum(thresh, self._cap_max)
        q = thresh + self._shift * np.arange(self.n_nodes)
        idx = np.searchsorted(self._keys, q, side="right") - 1
        return np.maximum(idx, self.offsets[:-1])


class FrontierPool:
    """All node frontiers of a fleet, packed into flat numpy arrays.

    Parameters are trusted arrays; use :meth:`from_frontiers` or
    :meth:`synthesize` instead of the constructor.  Per-node segments
    must be sorted by cap with strictly increasing rates — exactly the
    invariant :class:`~repro.cluster.node.NodeFrontier` enforces.
    """

    def __init__(
        self,
        names: Sequence[str],
        caps: np.ndarray,
        rates: np.ndarray,
        powers: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        names = list(names)
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        caps = np.asarray(caps, dtype=np.float64)
        rates = np.asarray(rates, dtype=np.float64)
        powers = np.asarray(powers, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size != len(names) + 1 or (offsets[0] != 0 if offsets.size else False):
            raise ValueError("offsets must have n_nodes + 1 entries starting at 0")
        if caps.shape != rates.shape or caps.shape != powers.shape:
            raise ValueError("caps, rates, and powers must have equal shapes")
        if offsets.size and int(offsets[-1]) != caps.size:
            raise ValueError("offsets must cover the point arrays")
        if np.any(np.diff(offsets) < 1):
            raise ValueError("every node needs at least one frontier point")
        if caps.size and (not np.all(np.isfinite(caps)) or float(caps.min()) < 0.0):
            raise ValueError("caps must be finite and non-negative")
        if caps.size and not (np.all(np.isfinite(rates)) and np.all(np.isfinite(powers))):
            raise ValueError("rates and powers must be finite")
        self._names = names
        self._index = {name: i for i, name in enumerate(names)}
        self._caps = caps
        self._rates = rates
        self._powers = powers
        self._offsets = offsets
        self._active = np.ones(len(names), dtype=bool)
        self._version = 0
        self._view_cache: tuple[int, _PoolView] | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_frontiers(cls, frontiers: Mapping[str, NodeFrontier]) -> "FrontierPool":
        """Pack existing node frontiers (in mapping order) into a pool."""
        names = list(frontiers)
        counts = np.array([len(frontiers[n]) for n in names], dtype=np.int64)
        total = int(counts.sum()) if names else 0
        caps = np.empty(total)
        rates = np.empty(total)
        powers = np.empty(total)
        i = 0
        for name in names:
            for p in frontiers[name].points:
                caps[i] = p.cap_w
                rates[i] = p.rate
                powers[i] = p.expected_power_w
                i += 1
        offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return cls(names, caps, rates, powers, offsets)

    @classmethod
    def synthesize(
        cls,
        n_nodes: int,
        *,
        seed: int = 0,
        points_per_node: int = 12,
        concavity: float = 0.85,
    ) -> "FrontierPool":
        """Generate a deterministic fleet of plausible node frontiers.

        Floors, step powers, and marginal utilities are drawn from the
        ranges the 4-node benchmark's real frontiers occupy; utilities
        are mostly decreasing along each frontier (``concavity`` is the
        probability a step keeps the concave trend — the remainder get a
        utility bump, exercising the kernels' non-concave handling).
        All generation is array arithmetic: no Python loop over nodes.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if points_per_node < 1:
            raise ValueError("points_per_node must be >= 1")
        rng = np.random.default_rng(seed)
        k = points_per_node
        floors = rng.uniform(8.0, 16.0, n_nodes)
        base_rate = rng.uniform(0.2, 1.0, n_nodes)
        if k > 1:
            step_p = rng.uniform(0.4, 2.5, (n_nodes, k - 1))
            utility = np.sort(rng.uniform(0.005, 0.06, (n_nodes, k - 1)), axis=1)[
                :, ::-1
            ]
            bump = rng.random((n_nodes, k - 1)) >= concavity
            utility = np.where(bump, utility * rng.uniform(1.5, 3.0, bump.shape), utility)
            caps2d = floors[:, None] + np.concatenate(
                [np.zeros((n_nodes, 1)), np.cumsum(step_p, axis=1)], axis=1
            )
            rates2d = base_rate[:, None] + np.concatenate(
                [np.zeros((n_nodes, 1)), np.cumsum(step_p * utility, axis=1)], axis=1
            )
        else:
            caps2d = floors[:, None]
            rates2d = base_rate[:, None]
        powers2d = caps2d * rng.uniform(0.92, 1.0, (n_nodes, k))
        width = max(6, len(str(n_nodes - 1)))
        names = [f"node{i:0{width}d}" for i in range(n_nodes)]
        offsets = np.arange(n_nodes + 1, dtype=np.int64) * k
        return cls(
            names,
            caps2d.reshape(-1),
            rates2d.reshape(-1),
            powers2d.reshape(-1),
            offsets,
        )

    # -- introspection ------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total nodes ever added (active or not)."""
        return len(self._names)

    @property
    def n_active(self) -> int:
        """Nodes currently participating in allocation."""
        return int(self._active.sum())

    @property
    def n_points(self) -> int:
        """Total packed frontier points (active or not)."""
        return self._caps.size

    @property
    def version(self) -> int:
        """Membership version; bumps on every join/leave/add."""
        return self._version

    def active_names(self) -> list[str]:
        """Names of active nodes, in pool (insertion) order."""
        return [n for n, a in zip(self._names, self._active) if a]

    def is_active(self, name: str) -> bool:
        return bool(self._active[self._index[name]])

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return self.n_active

    # -- dynamic membership -------------------------------------------------

    def _resolve(self, names: Iterable[str]) -> list[int]:
        unknown = [n for n in names if n not in self._index]
        if unknown:
            raise ValueError(f"unknown nodes: {unknown}")
        return [self._index[n] for n in names]

    def deactivate(self, names: Iterable[str]) -> int:
        """Drop nodes from allocation (dead or departed); returns how
        many actually changed state.  Points stay packed — rejoining is
        :meth:`activate`, not a rebuild."""
        idx = self._resolve(list(names))
        changed = int(np.count_nonzero(self._active[idx]))
        if changed:
            self._active[idx] = False
            self._version += 1
        return changed

    def activate(self, names: Iterable[str]) -> int:
        """Re-admit previously deactivated nodes."""
        idx = self._resolve(list(names))
        changed = int(np.count_nonzero(~self._active[idx]))
        if changed:
            self._active[idx] = True
            self._version += 1
        return changed

    def add_frontiers(self, frontiers: Mapping[str, NodeFrontier]) -> None:
        """Append newly joined nodes' frontiers to the packed arrays."""
        if not frontiers:
            return
        dupes = [n for n in frontiers if n in self._index]
        if dupes:
            raise ValueError(f"nodes already pooled: {dupes}")
        extra = FrontierPool.from_frontiers(frontiers)
        base = self._caps.size
        self._caps = np.concatenate([self._caps, extra._caps])
        self._rates = np.concatenate([self._rates, extra._rates])
        self._powers = np.concatenate([self._powers, extra._powers])
        self._offsets = np.concatenate([self._offsets, extra._offsets[1:] + base])
        for name in extra._names:
            self._index[name] = len(self._names)
            self._names.append(name)
        self._active = np.concatenate(
            [self._active, np.ones(len(extra._names), dtype=bool)]
        )
        self._version += 1

    def subpool(self, names: Iterable[str]) -> "FrontierPool":
        """A new pool holding copies of the named nodes' frontiers, in
        the given order (the :class:`~repro.cluster.tree.BudgetTree`
        uses this to carve racks out of the fleet)."""
        idx = self._resolve(list(names))
        counts = np.diff(self._offsets)
        sub_names = [self._names[i] for i in idx]
        pieces_c = [
            self._caps[self._offsets[i] : self._offsets[i + 1]] for i in idx
        ]
        pieces_r = [
            self._rates[self._offsets[i] : self._offsets[i + 1]] for i in idx
        ]
        pieces_p = [
            self._powers[self._offsets[i] : self._offsets[i + 1]] for i in idx
        ]
        offsets = np.concatenate(([0], np.cumsum(counts[idx]))).astype(np.int64)
        return FrontierPool(
            sub_names,
            np.concatenate(pieces_c) if pieces_c else np.empty(0),
            np.concatenate(pieces_r) if pieces_r else np.empty(0),
            np.concatenate(pieces_p) if pieces_p else np.empty(0),
            offsets,
        )

    # -- views --------------------------------------------------------------

    def view(self) -> _PoolView:
        """The compacted active-node view (cached per membership
        version) that the allocation kernels consume."""
        cached = self._view_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        if self.n_active == 0:
            raise ValueError("no active nodes in the pool")
        if bool(self._active.all()):
            view = _PoolView(
                list(self._names),
                self._caps,
                self._rates,
                self._powers,
                self._offsets,
            )
        else:
            counts = np.diff(self._offsets)
            sel = self._active
            point_mask = np.repeat(sel, counts)
            offsets = np.concatenate(
                ([0], np.cumsum(counts[sel]))
            ).astype(np.int64)
            view = _PoolView(
                self.active_names(),
                self._caps[point_mask],
                self._rates[point_mask],
                self._powers[point_mask],
                offsets,
            )
        self._view_cache = (self._version, view)
        return view

    # -- queries ------------------------------------------------------------

    def floors(self) -> np.ndarray:
        """Active nodes' floor caps, aligned with :meth:`active_names`."""
        return self.view().floors().copy()

    def at_caps(self, caps_w) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Best operating point of every active node under per-node caps.

        Returns ``(point_caps, expected_powers, rates)`` arrays aligned
        with :meth:`active_names` — the batched form of
        :meth:`NodeFrontier.at_cap`, including the below-floor fallback.
        """
        view = self.view()
        idx = view.at_caps_indices(np.asarray(caps_w, dtype=np.float64))
        return view.caps[idx], view.powers[idx], view.rates[idx]

    def to_frontiers(self) -> dict[str, NodeFrontier]:
        """Materialize active nodes back into per-node frontiers (the
        interop and reference-validation path; O(points) objects)."""
        view = self.view()
        out: dict[str, NodeFrontier] = {}
        for i, name in enumerate(view.names):
            lo, hi = int(view.offsets[i]), int(view.offsets[i + 1])
            out[name] = NodeFrontier(
                [
                    NodeFrontierPoint(
                        cap_w=float(view.caps[j]),
                        expected_power_w=float(view.powers[j]),
                        rate=float(view.rates[j]),
                    )
                    for j in range(lo, hi)
                ]
            )
        return out
