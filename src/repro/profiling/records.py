"""Profile records and the measurement history database.

The paper's profiling library records "samples of performance counters
and power measurements to resident data structures, which are written to
disk after the application completes", and exposes "a history of
performance and power measurements ... to the application or runtime,
which facilitates online selections of device and configuration"
(Section III-D).  :class:`KernelProfile` is one such record;
:class:`ProfileDatabase` is the resident history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.hardware.apu import Measurement
from repro.hardware.config import Configuration

__all__ = ["KernelProfile", "ProfileDatabase"]


@dataclass(frozen=True)
class KernelProfile:
    """One profiled kernel execution.

    Attributes
    ----------
    kernel_uid:
        Unique id of the profiled kernel
        (:attr:`repro.workloads.Kernel.uid`).
    measurement:
        The measured execution (time, per-plane power, counters).
    iteration:
        Sequence number of this invocation of the kernel within the
        application run (the paper's online stage acts on iterations 1
        and 2 — the sample-configuration runs).
    sampling_overhead_s:
        Extra wall time attributable to the 1 kHz power sampling.
    """

    kernel_uid: str
    measurement: Measurement
    iteration: int = 0
    sampling_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.kernel_uid:
            raise ValueError("kernel_uid must be non-empty")
        if self.iteration < 0:
            raise ValueError("iteration must be non-negative")
        if self.sampling_overhead_s < 0:
            raise ValueError("sampling_overhead_s must be non-negative")

    @property
    def config(self) -> Configuration:
        """The configuration the profiled execution ran on."""
        return self.measurement.config

    @property
    def overhead_fraction(self) -> float:
        """Sampling overhead relative to the measured execution time."""
        return self.sampling_overhead_s / self.measurement.time_s


class ProfileDatabase:
    """In-memory history of kernel profiles, queryable by kernel and
    configuration.

    Insertion order is preserved; iteration numbers are assigned
    automatically per kernel (0, 1, 2, ...), matching how a runtime
    counts invocations.
    """

    def __init__(self) -> None:
        self._profiles: list[KernelProfile] = []
        self._iteration_count: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[KernelProfile]:
        return iter(self._profiles)

    def record(
        self,
        kernel_uid: str,
        measurement: Measurement,
        *,
        sampling_overhead_s: float = 0.0,
    ) -> KernelProfile:
        """Append a profile, assigning the kernel's next iteration number."""
        it = self._iteration_count.get(kernel_uid, 0)
        profile = KernelProfile(
            kernel_uid=kernel_uid,
            measurement=measurement,
            iteration=it,
            sampling_overhead_s=sampling_overhead_s,
        )
        self._profiles.append(profile)
        self._iteration_count[kernel_uid] = it + 1
        return profile

    def kernels(self) -> list[str]:
        """Distinct kernel uids in first-recorded order."""
        seen: list[str] = []
        for p in self._profiles:
            if p.kernel_uid not in seen:
                seen.append(p.kernel_uid)
        return seen

    def for_kernel(self, kernel_uid: str) -> list[KernelProfile]:
        """All profiles of one kernel, in recording order."""
        return [p for p in self._profiles if p.kernel_uid == kernel_uid]

    def lookup(
        self, kernel_uid: str, config: Configuration
    ) -> KernelProfile | None:
        """Most recent profile of a kernel on a specific configuration,
        or ``None`` — the runtime's history query (Section III-D)."""
        for p in reversed(self._profiles):
            if p.kernel_uid == kernel_uid and p.config == config:
                return p
        return None

    def iterations(self, kernel_uid: str) -> int:
        """How many times a kernel has been profiled."""
        return self._iteration_count.get(kernel_uid, 0)
