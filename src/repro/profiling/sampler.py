"""Simulated 1 kHz on-chip power sampling and energy integration.

The paper's power measurement method "involves sampling and accumulating
an on-chip power estimate at 1 kHz, which incurs overhead of less than
10% in all cases" (Section IV-C); per-kernel average power is obtained by
integrating the estimates over time (Section III-B).

:class:`PowerSampler` reproduces that pipeline: the ground-truth mean
power is turned into a fluctuating trace (first-order autoregressive
around the mean, modelling phase behaviour within a kernel), sampled at
the configured rate, perturbed per-sample, and integrated with the
trapezoidal rule.  The result is an *estimate* of average power whose
error shrinks with kernel duration — short kernels genuinely are harder
to measure, on silicon and here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:  # vectorized AR(1) recurrence; pure-numpy fallback below
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _lfilter = None

__all__ = ["PowerSampler", "SampledPower"]


@dataclass(frozen=True)
class SampledPower:
    """Result of integrating one sampled power trace.

    Attributes
    ----------
    mean_power_w:
        Trapezoidal average of the sampled trace (the estimate).
    energy_j:
        Integrated energy over the execution.
    n_samples:
        Number of samples taken (>= 2; short kernels still get the
        endpoints).
    overhead_s:
        Time added to the kernel's execution by the sampling activity.
    """

    mean_power_w: float
    energy_j: float
    n_samples: int
    overhead_s: float


@dataclass(frozen=True)
class PowerSampler:
    """A periodic power sampler with per-sample noise and overhead.

    Parameters
    ----------
    rate_hz:
        Sampling rate (paper: 1 kHz).
    sample_noise_rel:
        Relative standard deviation of each individual sample.
    fluctuation_rel:
        Relative magnitude of the slow power fluctuation around the mean
        (AR(1) with coefficient ``ar_coeff``).
    ar_coeff:
        Autocorrelation of successive fluctuation values, in ``[0, 1)``.
    overhead_per_sample_s:
        Execution-time cost of taking one sample (keeps total overhead
        below the paper's 10 % bound at 1 kHz for microsecond costs).
    """

    rate_hz: float = 1000.0
    sample_noise_rel: float = 0.01
    fluctuation_rel: float = 0.03
    ar_coeff: float = 0.9
    overhead_per_sample_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if not 0 <= self.ar_coeff < 1:
            raise ValueError("ar_coeff must be in [0, 1)")
        for name in ("sample_noise_rel", "fluctuation_rel"):
            if not 0 <= getattr(self, name) < 0.5:
                raise ValueError(f"{name} must be in [0, 0.5)")
        if self.overhead_per_sample_s < 0:
            raise ValueError("overhead_per_sample_s must be non-negative")

    def sample(
        self,
        true_mean_w: float,
        duration_s: float,
        rng: np.random.Generator,
    ) -> SampledPower:
        """Sample a kernel execution of ``duration_s`` seconds whose
        ground-truth average power is ``true_mean_w``.

        Returns the integrated estimate.  At least two samples (start
        and finish of the kernel, as the paper records) are always
        taken.
        """
        if true_mean_w <= 0:
            raise ValueError("true_mean_w must be positive")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")

        n = max(2, int(round(duration_s * self.rate_hz)) + 1)
        # AR(1) fluctuation around the mean, variance-normalized so the
        # marginal std is fluctuation_rel regardless of ar_coeff.
        innov_std = self.fluctuation_rel * np.sqrt(1.0 - self.ar_coeff**2)
        fluct = np.empty(n)
        fluct[0] = rng.normal(scale=self.fluctuation_rel)
        innovations = rng.normal(scale=innov_std, size=n - 1)
        if _lfilter is not None:
            # fluct[i] = ar * fluct[i-1] + innovations[i-1] as an IIR
            # filter, seeded so y[0] = innovations[0] + ar * fluct[0].
            fluct[1:] = _lfilter(
                [1.0],
                [1.0, -self.ar_coeff],
                innovations,
                zi=np.array([self.ar_coeff * fluct[0]]),
            )[0]
        else:  # pragma: no cover - exercised only without scipy
            for i in range(1, n):
                fluct[i] = self.ar_coeff * fluct[i - 1] + innovations[i - 1]
        trace = true_mean_w * (1.0 + fluct)
        trace *= 1.0 + rng.normal(scale=self.sample_noise_rel, size=n)
        trace = np.maximum(trace, 0.0)

        times = np.linspace(0.0, duration_s, n)
        energy = float(np.trapezoid(trace, times))
        return SampledPower(
            mean_power_w=energy / duration_s,
            energy_j=energy,
            n_samples=n,
            overhead_s=n * self.overhead_per_sample_s,
        )
