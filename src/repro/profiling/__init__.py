"""Profiling substrate — instrumented measurement of kernel executions.

Reproduces the paper's integrated profiling library (Section III-D):
1 kHz on-chip power sampling with trapezoidal energy integration
(:mod:`~repro.profiling.sampler`), per-kernel profile records and a
runtime-accessible measurement history (:mod:`~repro.profiling.records`),
the instrumentation layer itself (:mod:`~repro.profiling.library`), the
profile-once shared characterization store
(:mod:`~repro.profiling.store`), and on-disk persistence
(:mod:`~repro.profiling.io`).
"""

from repro.profiling.io import (
    database_from_json,
    database_to_json,
    load_database,
    save_database,
)
from repro.profiling.library import COUNTER_READ_OVERHEAD_S, ProfilingLibrary
from repro.profiling.records import KernelProfile, ProfileDatabase
from repro.profiling.sampler import PowerSampler, SampledPower
from repro.profiling.store import CharacterizationStore, suite_fingerprint

__all__ = [
    "COUNTER_READ_OVERHEAD_S",
    "CharacterizationStore",
    "KernelProfile",
    "PowerSampler",
    "ProfileDatabase",
    "ProfilingLibrary",
    "SampledPower",
    "suite_fingerprint",
    "database_from_json",
    "database_to_json",
    "load_database",
    "save_database",
]
