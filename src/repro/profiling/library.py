"""The integrated profiling library (paper Section III-D).

:class:`ProfilingLibrary` is the instrumentation layer between the
machine and the modeling pipeline.  A profiled execution:

1. runs the kernel (simulated) on the requested configuration;
2. estimates per-plane power by sampling the on-chip estimator at
   1 kHz and integrating (:mod:`repro.profiling.sampler`), charging the
   sampling overhead to the measured execution time;
3. reads performance counters at kernel start/finish (the paper bounds
   this at < 50 microseconds per kernel);
4. records the profile into a :class:`ProfileDatabase` history.

Everything downstream — Pareto frontiers, clustering, regression, the
classification tree — consumes only what this library records, exactly
as the paper's pipeline consumes only PAPI counters and integrated
power estimates.

Measurement noise is drawn from *counter-based* streams: every profiled
execution gets its own generator derived from the library seed and the
``(kernel uid, configuration, repetition)`` identity of the run.  Two
libraries with equal seeds therefore produce identical profiles for the
same run regardless of the order in which runs are requested — the
property that lets :class:`repro.profiling.store.CharacterizationStore`
characterize the suite once and share the profiles across every
cross-validation fold and ablation variant.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.hardware.apu import Measurement, TrinityAPU
from repro.hardware.config import Configuration
from repro.hardware.counters import synthesize_counters
from repro.profiling.records import KernelProfile, ProfileDatabase
from repro.profiling.sampler import PowerSampler
from repro.telemetry import counter, gauge

__all__ = ["ProfilingLibrary"]

#: Counter read cost at kernel start + finish (paper: < 50 us).
COUNTER_READ_OVERHEAD_S: float = 50e-6

#: Process-wide memo of profiled executions.  A profile is a pure
#: function of the machine physics (power constants, noise model), the
#: sampling model, the library's base entropy, and the run identity
#: (kernel uid + characteristics, configuration, repetition) — the
#: counter-based streams exist precisely so that equal seeds reproduce
#: equal profiles.  Repeated evaluations (warm LOOCV runs, ablation
#: sweeps) therefore reuse measurements instead of re-integrating the
#: sampled traces.  Bypassed when the machine has boost enabled (truth
#: may carry thermal state).
_PROFILE_CACHE: dict[tuple, tuple[Measurement, float]] = {}

# Hit/miss accounting for the profile memo (see docs/OBSERVABILITY.md).
_PROFILE_HITS = counter("cache.profile.hits")
_PROFILE_MISSES = counter("cache.profile.misses")
_PROFILE_SIZE = gauge("cache.profile.size")


def _run_key(kernel_uid: str, config: Configuration, repetition: int) -> list[int]:
    """Stable 128-bit entropy words identifying one profiled run."""
    ident = f"{kernel_uid}\x1f{config.label()}\x1f{repetition}".encode()
    digest = hashlib.sha256(ident).digest()
    return [
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    ]


class ProfilingLibrary:
    """Instrumented kernel execution with power sampling and history.

    Parameters
    ----------
    apu:
        The machine to run on.
    sampler:
        Power sampling model (defaults to the paper's 1 kHz).
    seed:
        Seed of the library's measurement-noise streams; also accepts a
        :class:`numpy.random.SeedSequence` (e.g. one spawned per
        cross-validation fold).  Noise is keyed per
        ``(kernel, configuration, repetition)``, so two libraries with
        equal seeds produce identical profiles for the same runs in any
        order.
    """

    def __init__(
        self,
        apu: TrinityAPU,
        *,
        sampler: PowerSampler | None = None,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        self.apu = apu
        self.sampler = sampler if sampler is not None else PowerSampler()
        self.database = ProfileDatabase()
        seed_seq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        # Base entropy words; combined with each run's identity key to
        # derive that run's private noise stream.
        self._base_entropy = [int(w) for w in seed_seq.generate_state(4)]
        # Per-(kernel, configuration) repetition counters: re-profiling
        # the same run draws fresh noise, while first-time profiles are
        # independent of the order other runs were requested in.
        self._rep_counts: dict[tuple[str, Configuration], int] = {}

    def _run_rng(
        self, kernel_uid: str, config: Configuration, repetition: int
    ) -> np.random.Generator:
        """The counter-based noise stream of one profiled execution."""
        entropy = self._base_entropy + _run_key(kernel_uid, config, repetition)
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def profile(
        self,
        kernel,
        config: Configuration,
        *,
        kernel_uid: str | None = None,
    ) -> KernelProfile:
        """Execute ``kernel`` once on ``config`` and record the profile.

        ``kernel`` may be a :class:`repro.workloads.Kernel` (its
        :attr:`~repro.workloads.Kernel.uid` names the record) or raw
        :class:`~repro.hardware.KernelCharacteristics` with an explicit
        ``kernel_uid``.
        """
        uid = kernel_uid if kernel_uid is not None else getattr(kernel, "uid", None)
        if not uid:
            raise ValueError(
                "kernel has no uid; pass kernel_uid= for raw characteristics"
            )

        repetition = self._rep_counts.get((uid, config), 0)
        self._rep_counts[(uid, config)] = repetition + 1

        chars = kernel if not hasattr(kernel, "characteristics") else (
            kernel.characteristics
        )

        # Fault injection: the run clock advances per profile attempt
        # (failed attempts included), may raise SampleRunError, and may
        # substitute the executed P-state.  Run identity — the noise
        # stream and repetition count — stays keyed by the *requested*
        # configuration, so an empty plan replays bit-identically and a
        # retry after a failure draws fresh noise.
        fctx = None
        if self.apu.fault_injector is not None:
            fctx = self.apu.fault_injector.begin_run(config)
        exec_config = config if fctx is None else fctx.config

        memo_key = None
        if self.apu.boost is None and (fctx is None or fctx.clean):
            memo_key = (
                self.apu.power_constants,
                self.apu.noise,
                self.sampler,
                tuple(self._base_entropy),
                uid,
                chars,
                config,
                repetition,
            )
            cached = _PROFILE_CACHE.get(memo_key)
            if cached is not None:
                _PROFILE_HITS.inc()
                measurement, sampling_overhead = cached
                return self.database.record(
                    uid, measurement, sampling_overhead_s=sampling_overhead
                )
            _PROFILE_MISSES.inc()

        rng = self._run_rng(uid, config, repetition)
        true_t = self.apu.true_time_s(kernel, exec_config)
        true_pb = self.apu.true_power(kernel, exec_config)

        # Integrate each power plane from its own sampled trace.
        cpu_sp = self.sampler.sample(true_pb.cpu_plane_w, true_t, rng)
        nbgpu_sp = self.sampler.sample(true_pb.nbgpu_plane_w, true_t, rng)
        sampling_overhead = cpu_sp.overhead_s + COUNTER_READ_OVERHEAD_S

        # Timing measurement includes instrumentation overhead plus the
        # machine's run-to-run noise.
        noisy_t = self.apu.noise.perturb_time(true_t, rng)
        measured_t = noisy_t + sampling_overhead

        counters = self.apu.noise.perturb_counters(
            synthesize_counters(chars, exec_config), rng
        )
        measurement = Measurement(
            config=exec_config,
            time_s=measured_t,
            cpu_plane_w=cpu_sp.mean_power_w,
            nbgpu_plane_w=nbgpu_sp.mean_power_w,
            counters=counters,
        )
        if fctx is not None:
            measurement = fctx.apply(measurement)
        if memo_key is not None:
            _PROFILE_CACHE[memo_key] = (measurement, sampling_overhead)
            _PROFILE_SIZE.set(len(_PROFILE_CACHE))
        return self.database.record(
            uid, measurement, sampling_overhead_s=sampling_overhead
        )

    def profile_all_configs(self, kernel) -> list[KernelProfile]:
        """Profile a kernel on every machine configuration — the offline
        exhaustive characterization applied to training kernels."""
        return [self.profile(kernel, cfg) for cfg in self.apu.config_space]
