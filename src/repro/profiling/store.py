"""Profile-once characterization store (paper Section III-D / V-C).

The paper's whole argument is that the exhaustive configuration sweep is
expensive and therefore done **once, offline**; everything downstream
consumes the recorded profiles.  The evaluation pipeline used to violate
that economy: every cross-validation fold and every ablation variant
re-profiled its training kernels on all 42 configurations from scratch,
re-deriving byte-identical profiles because measurement noise is pure
function of ``(seed, kernel, configuration, repetition)`` (see
:mod:`repro.profiling.library`).

:class:`CharacterizationStore` restores the paper's profile-once
architecture:

* the suite is characterized at most once per ``(suite, seed)``; folds
  and ablation variants slice their training subsets from the shared
  store;
* per-kernel Pareto frontiers are derived once and registered in a
  :class:`~repro.core.dissimilarity.DissimilarityCache`, so each fold's
  dissimilarity matrix is a submatrix slice instead of a fresh
  pairwise-comparison pass;
* :meth:`CharacterizationStore.shared` keeps a process-wide registry so
  independent :func:`~repro.evaluation.loocv.run_loocv` calls (e.g. the
  12+ invocations across the ablation benchmarks) reuse one
  characterization campaign.

Because the profiling library's noise streams are order-independent,
store-served characterizations are *identical* to what a from-scratch
sweep with the same seed would measure — caching changes wall-clock
time, never results.  A regression test pins this guarantee.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.hardware.apu import TrinityAPU
from repro.profiling.library import ProfilingLibrary
from repro.profiling.sampler import PowerSampler
from repro.telemetry import counter, trace_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> profiling)
    from repro.core.characterization import KernelCharacterization
    from repro.core.frontier import ParetoFrontier
    from repro.core.regression import RegressionGramPool

__all__ = ["CharacterizationStore", "suite_fingerprint"]

#: Entropy tag separating the store's noise streams from other
#: consumers of the same master seed.
_STORE_STREAM_TAG: int = 0x5F_C4A2_51ED

#: Bound on the process-wide shared-store registry (FIFO eviction).
_MAX_SHARED_STORES: int = 16

# Registry-level accounting mirroring the per-store hit/miss fields, so
# telemetry.json sees the stores without holding references to them.
_STORE_HITS = counter("store.characterization.hits")
_STORE_MISSES = counter("store.characterization.misses")


def suite_fingerprint(kernels: Iterable) -> tuple:
    """Hashable identity of a kernel set: uids plus latent characteristics.

    Two suites with the same fingerprint produce identical ground truth
    and (for a fixed seed) identical profiles, so they may share a
    store.
    """
    return tuple(
        sorted((k.uid, k.characteristics) for k in kernels)
    )


class CharacterizationStore:
    """Shared, order-independent cache of exhaustive kernel sweeps.

    Parameters
    ----------
    apu:
        Machine to profile on — any
        :class:`~repro.hardware.backend.HardwareBackend`; defaults to
        ``TrinityAPU(seed=seed)``.
    seed:
        Master seed.  The store's profiling-noise streams are derived
        from it through a tagged :class:`numpy.random.SeedSequence`, so
        a store is a pure function of ``(suite, seed, sampler)``.
    sampler:
        Optional :class:`~repro.profiling.sampler.PowerSampler` override.

    Thread safety: all public methods may be called from concurrent
    fold workers; characterization of each kernel happens exactly once.
    """

    def __init__(
        self,
        apu=None,
        *,
        seed: int = 0,
        sampler: PowerSampler | None = None,
    ) -> None:
        self.apu = apu if apu is not None else TrinityAPU(seed=seed)
        self.seed = seed
        self.library = ProfilingLibrary(
            self.apu,
            sampler=sampler,
            seed=np.random.SeedSequence([seed, _STORE_STREAM_TAG]),
        )
        self._lock = threading.RLock()
        self._chars: dict[str, "KernelCharacterization"] = {}
        self._characteristics: dict[str, object] = {}
        self._frontiers: dict[str, "ParetoFrontier"] = {}
        self._diss_cache = None  # lazily built DissimilarityCache
        self._gram_pools: dict = {}
        self.hits = 0
        self.misses = 0

    # -- characterizations -------------------------------------------------

    def characterization(self, kernel) -> "KernelCharacterization":
        """The kernel's exhaustive characterization (cached)."""
        from repro.core.characterization import characterize_kernel

        uid = kernel.uid
        with self._lock:
            cached = self._chars.get(uid)
            if cached is not None:
                if self._characteristics[uid] != kernel.characteristics:
                    raise ValueError(
                        f"kernel {uid!r} conflicts with a previously "
                        "characterized kernel of the same uid; use a "
                        "separate store per suite"
                    )
                self.hits += 1
                _STORE_HITS.inc()
                return cached
            self.misses += 1
            _STORE_MISSES.inc()
            char = characterize_kernel(self.library, kernel)
            self._chars[uid] = char
            self._characteristics[uid] = kernel.characteristics
            return char

    def characterize(self, kernels: Sequence) -> list["KernelCharacterization"]:
        """Characterizations for many kernels, in input order (cached)."""
        with trace_span("offline/characterize"):
            return [self.characterization(k) for k in kernels]

    # -- frontiers and dissimilarities -------------------------------------

    def frontier(self, kernel) -> "ParetoFrontier":
        """The kernel's measured Pareto frontier (cached)."""
        uid = kernel.uid
        with self._lock:
            cached = self._frontiers.get(uid)
            if cached is None:
                cached = self.characterization(kernel).frontier()
                self._frontiers[uid] = cached
            return cached

    def dissimilarity_submatrix(
        self,
        kernels: Sequence,
        *,
        composition_weight: float | None = None,
    ) -> np.ndarray:
        """The kernel subset's frontier-dissimilarity matrix.

        Sliced from a cached full matrix over every kernel the store has
        seen so far, built at most once per composition weight.
        """
        from repro.core.dissimilarity import (
            DEFAULT_COMPOSITION_WEIGHT,
            DissimilarityCache,
        )

        w = (
            DEFAULT_COMPOSITION_WEIGHT
            if composition_weight is None
            else composition_weight
        )
        with trace_span("offline/dissimilarity"), self._lock:
            if self._diss_cache is None:
                self._diss_cache = DissimilarityCache()
            for k in kernels:
                if k.uid not in self._diss_cache:
                    self._diss_cache.add(k.uid, self.frontier(k))
            return self._diss_cache.submatrix(
                [k.uid for k in kernels], composition_weight=w
            )

    def gram_pool(
        self, *, transform: str = "none", power_anchor: bool = True
    ) -> "RegressionGramPool":
        """The store's regression sufficient-statistics pool for one
        model setting (see
        :class:`~repro.core.regression.RegressionGramPool`).

        Pools live as long as the store, so per-kernel Gram blocks are
        accumulated once suite-wide and every later training pass —
        folds, repeated ``run_loocv`` calls, ablation sweeps — reuses
        them.  One pool exists per ``(transform, power_anchor)``
        because both change the accumulated design rows.
        """
        from repro.core.regression import RegressionGramPool

        with self._lock:
            key = (transform, power_anchor)
            pool = self._gram_pools.get(key)
            if pool is None:
                pool = RegressionGramPool(
                    transform=transform, power_anchor=power_anchor
                )
                self._gram_pools[key] = pool
            return pool

    def stats(self) -> dict:
        """Cache statistics (for benchmarks and diagnostics)."""
        with self._lock:
            return {
                "kernels": len(self._chars),
                "profiles": len(self.library.database),
                "hits": self.hits,
                "misses": self.misses,
            }

    # -- process-wide registry ---------------------------------------------

    _shared_lock = threading.Lock()
    _shared: dict = {}

    @classmethod
    def shared(
        cls, kernels: Iterable, *, seed: int = 0, backend: str = "trinity"
    ) -> "CharacterizationStore":
        """The process-wide store for a ``(suite, seed, backend)`` triple.

        Repeated calls with suites of equal :func:`suite_fingerprint`,
        equal seed, and equal backend name return the same store, so
        independent evaluation runs (folds, ablation variants, repeated
        ``run_loocv`` calls) share one characterization campaign.  The
        store profiles on its own default-constructed machine of the
        named backend; callers needing a non-default machine or sampler
        should build a private store instead.
        """
        key = (suite_fingerprint(kernels), seed, backend)
        with cls._shared_lock:
            store = cls._shared.get(key)
            if store is None:
                if backend == "trinity":
                    store = cls(seed=seed)
                else:
                    from repro.hardware.backend import create_backend

                    store = cls(create_backend(backend, seed=seed), seed=seed)
                while len(cls._shared) >= _MAX_SHARED_STORES:
                    cls._shared.pop(next(iter(cls._shared)))
                cls._shared[key] = store
            return store

    @classmethod
    def clear_shared(cls) -> None:
        """Drop every registry entry (test isolation hook)."""
        with cls._shared_lock:
            cls._shared.clear()
