"""JSON round-trip for profiles.

The paper's library writes recorded profiles "to disk after the
application completes" (Section III-D); these helpers provide that
persistence so offline training can run on saved characterization data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.hardware.apu import Measurement
from repro.hardware.config import Configuration, Device
from repro.profiling.records import KernelProfile, ProfileDatabase

__all__ = ["database_to_json", "database_from_json", "save_database", "load_database"]


def _config_to_dict(cfg: Configuration) -> dict[str, Any]:
    return {
        "device": cfg.device.value,
        "cpu_freq_ghz": cfg.cpu_freq_ghz,
        "n_threads": cfg.n_threads,
        "gpu_freq_ghz": cfg.gpu_freq_ghz,
    }


def _config_from_dict(d: dict[str, Any]) -> Configuration:
    return Configuration(
        device=Device(d["device"]),
        cpu_freq_ghz=float(d["cpu_freq_ghz"]),
        n_threads=int(d["n_threads"]),
        gpu_freq_ghz=float(d["gpu_freq_ghz"]),
    )


def _profile_to_dict(p: KernelProfile) -> dict[str, Any]:
    m = p.measurement
    return {
        "kernel_uid": p.kernel_uid,
        "iteration": p.iteration,
        "sampling_overhead_s": p.sampling_overhead_s,
        "config": _config_to_dict(m.config),
        "time_s": m.time_s,
        "cpu_plane_w": m.cpu_plane_w,
        "nbgpu_plane_w": m.nbgpu_plane_w,
        "counters": dict(m.counters),
    }


def database_to_json(db: ProfileDatabase) -> str:
    """Serialize a profile database to a JSON string."""
    return json.dumps(
        {"version": 1, "profiles": [_profile_to_dict(p) for p in db]},
        indent=2,
        sort_keys=True,
    )


def database_from_json(text: str) -> ProfileDatabase:
    """Rebuild a profile database from :func:`database_to_json` output.

    Iteration numbers are reassigned in recording order, which matches
    the saved order for databases produced by this package.
    """
    data = json.loads(text)
    if data.get("version") != 1:
        raise ValueError(f"unsupported profile database version: {data.get('version')!r}")
    db = ProfileDatabase()
    for d in data["profiles"]:
        m = Measurement(
            config=_config_from_dict(d["config"]),
            time_s=float(d["time_s"]),
            cpu_plane_w=float(d["cpu_plane_w"]),
            nbgpu_plane_w=float(d["nbgpu_plane_w"]),
            counters={k: float(v) for k, v in d["counters"].items()},
        )
        db.record(
            d["kernel_uid"], m, sampling_overhead_s=float(d["sampling_overhead_s"])
        )
    return db


def save_database(db: ProfileDatabase, path: str | Path) -> None:
    """Write a profile database to a JSON file."""
    Path(path).write_text(database_to_json(db), encoding="utf-8")


def load_database(path: str | Path) -> ProfileDatabase:
    """Read a profile database from a JSON file."""
    return database_from_json(Path(path).read_text(encoding="utf-8"))
