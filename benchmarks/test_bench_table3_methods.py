"""Table III: the cross-validated method comparison against the oracle.

Paper values (for shape reference; absolute numbers are testbed-specific):

=========  ========  =======  ========  ========  =======
Method     % Under   U %Perf  U %Power  O %Power  O %Perf
=========  ========  =======  ========  ========  =======
Model      70        91       94        112       139
Model+FL   88        91       91        106       154
GPU+FL     60        94       95        137       1723
CPU+FL     76        69       94        111       216
=========  ========  =======  ========  ========  =======

Shape assertions below: Model+FL attains the best compliance/performance
combination; GPU+FL violates caps most and overshoots hardest when it
does; CPU+FL is compliant but slow; the model methods stay near oracle
power in violations.

The timed operation is metric aggregation over the ~5000 evaluation
records (the LOOCV run itself is a session fixture shared with the
figure benchmarks).
"""

from repro.evaluation import render_table3, summarize

from conftest import write_artifact


def test_table3_method_comparison(benchmark, loocv_report):
    summaries = benchmark(summarize, loocv_report.records)

    text = render_table3(summaries, title="Table III: methods vs oracle")
    write_artifact("table3_methods.txt", text)
    print("\n" + text)

    s = {x.method: x for x in summaries}
    assert set(s) == {"Model", "Model+FL", "CPU+FL", "GPU+FL"}

    # -- compliance ordering ------------------------------------------------
    assert s["Model+FL"].pct_under_limit >= s["Model"].pct_under_limit
    assert s["GPU+FL"].pct_under_limit == min(
        x.pct_under_limit for x in summaries
    )
    assert s["Model+FL"].pct_under_limit > 85.0          # paper: 88
    assert 45.0 < s["GPU+FL"].pct_under_limit < 75.0     # paper: 60
    assert 65.0 < s["CPU+FL"].pct_under_limit < 90.0     # paper: 76

    # -- under-limit performance ---------------------------------------------
    assert s["Model+FL"].under_perf_pct > 80.0           # paper: 91
    assert s["Model"].under_perf_pct > 80.0              # paper: 91
    assert s["CPU+FL"].under_perf_pct == min(
        x.under_perf_pct for x in summaries
    )                                                    # paper: 69 (worst)
    assert s["CPU+FL"].under_perf_pct < 75.0

    # -- under-limit power: everyone below oracle power ----------------------
    for x in summaries:
        assert x.under_power_pct <= 100.0

    # -- over-limit behaviour -------------------------------------------------
    assert s["GPU+FL"].over_power_pct == max(
        x.over_power_pct for x in summaries
    )                                                    # paper: 137 (worst)
    assert s["GPU+FL"].over_perf_pct == max(
        x.over_perf_pct for x in summaries
    )                                                    # paper: 1723 (extreme)
    # Model methods exceed caps modestly (paper: 6-12% average excess).
    assert s["Model"].over_power_pct < 125.0
    assert s["Model+FL"].over_power_pct < 125.0
    # Over-limit violations buy extra performance (> oracle at that cap).
    assert s["Model+FL"].over_perf_pct > 100.0
