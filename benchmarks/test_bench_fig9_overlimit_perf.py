"""Figure 9: performance relative to the oracle in over-limit cases.

Paper shape being reproduced: "It is possible to exceed oracle
performance only when also exceeding oracle power."  GPU+FL's bars are
clipped in the paper (1218% SMC, 9297% LU Large, 627% LU Small) — by
burning far more power than the cap allows, it wildly out-performs an
oracle that respects the cap.  The LU groups must show the largest
GPU+FL excess, and the model methods must stay comparatively tame
(paper: 2.3x worst case).

The timed operation is per-group metric aggregation.
"""

import math

from repro.evaluation import render_group_bars, summarize_by_group

from conftest import write_artifact


def test_fig9_overlimit_performance_by_benchmark(benchmark, loocv_report):
    by_group = benchmark(summarize_by_group, loocv_report.records)

    series = {
        g: {s.method: s.over_perf_pct for s in summaries}
        for g, summaries in by_group.items()
    }
    text = render_group_bars(
        series,
        title="Fig 9: % of oracle performance (over-limit cases)",
        bar_scale=500.0,
    )
    write_artifact("fig9_overlimit_perf.txt", text)
    print("\n" + text)

    def vals(method):
        return {
            g: v[method]
            for g, v in series.items()
            if method in v and not math.isnan(v[method])
        }

    gpu = vals("GPU+FL")
    # GPU+FL's most extreme over-limit performance lands on LU (the
    # paper's clipped 9297% / 627% bars are LU Large / LU Small).
    worst_group = max(gpu, key=gpu.get)
    assert worst_group.startswith("LU")
    assert gpu[worst_group] > 400.0

    # Exceeding oracle perf implies exceeding oracle power: check on the
    # raw records, the paper's stated invariant.
    for r in loocv_report.records:
        if not r.under_limit and r.perf_vs_oracle > 1.0 + 1e-9:
            assert r.power_vs_oracle > 1.0 - 1e-9

    # Model methods stay tame relative to GPU+FL (paper: <= 2.3x oracle).
    for method in ("Model", "Model+FL"):
        for v in vals(method).values():
            assert v < 300.0
