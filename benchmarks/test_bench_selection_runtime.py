"""Array-backed selection-engine runtime: the vectorization receipt.

Times the two hot paths the structure-of-arrays prediction engine
replaced:

* the **evaluate** phase of the cross-validated method comparison,
  split cold (first run of the process, every process-wide cache empty)
  vs warm (ground-truth, profile, and frontier memos hot) — the warm
  number is the acceptance gate for the engine;
* raw **batched cap selection** throughput: whole fig5/fig6-style cap
  sweeps answered by :meth:`Scheduler.select_many`, reported as
  configurations considered per second.

Numbers land in ``BENCH_selection.json`` at the repo root, next to
``BENCH_loocv.json``.
"""

import json
import time
from pathlib import Path

from repro.core import CPU_SAMPLE, GPU_SAMPLE, Scheduler
from repro.evaluation import run_loocv
from repro.methods import Oracle

from conftest import train_from_store, write_artifact

BENCH_PATH = Path(__file__).parent.parent / "BENCH_selection.json"


def test_selection_engine_runtime(benchmark, exact_apu, suite, char_store, loocv_report):
    # -- evaluate split: cold (session's first run) vs warm ------------------
    cold_evaluate_s = loocv_report.timings.evaluate_s
    warm = run_loocv(seed=0)
    assert warm.records == loocv_report.records
    warm_evaluate_s = warm.timings.evaluate_s

    # -- select_many throughput over oracle-cap sweeps -----------------------
    train = [k for k in suite if k.benchmark != "LU"]
    model = train_from_store(char_store, train)
    scheduler = Scheduler()
    oracle = Oracle(exact_apu)

    sweeps = []
    for kernel in suite.for_benchmark("LU"):
        cpu_m = exact_apu.run(kernel, CPU_SAMPLE)
        gpu_m = exact_apu.run(kernel, GPU_SAMPLE)
        prediction = model.predict_kernel(cpu_m, gpu_m, kernel_uid=kernel.uid)
        sweeps.append((prediction, oracle.caps_for(kernel)))

    def run_sweeps():
        return [
            scheduler.select_many(prediction, caps)
            for prediction, caps in sweeps
        ]

    decisions = benchmark(run_sweeps)

    # Every cap of every sweep produced a decision over the whole space.
    n_decisions = sum(len(d) for d in decisions)
    assert n_decisions == sum(len(caps) for _, caps in sweeps)
    n_configs = sum(
        len(caps) * len(prediction.config_tuple) for prediction, caps in sweeps
    )
    mean_s = benchmark.stats.stats.mean
    configs_per_s = n_configs / mean_s
    decisions_per_s = n_decisions / mean_s

    payload = {
        "experiment": "array-backed selection engine",
        "evaluate": {
            "cold_evaluate_s": round(cold_evaluate_s, 4),
            "warm_evaluate_s": round(warm_evaluate_s, 4),
            "records": len(warm.records),
        },
        "select_many": {
            "sweeps": len(sweeps),
            "caps": n_decisions,
            "configs_considered": n_configs,
            "mean_s": round(mean_s, 6),
            "configs_per_s": round(configs_per_s),
            "decisions_per_s": round(decisions_per_s),
        },
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    text = "\n".join(
        [
            "Array-backed selection engine",
            f"  evaluate phase: cold {cold_evaluate_s:.3f} s, "
            f"warm {warm_evaluate_s:.3f} s "
            f"({len(warm.records)} records, bit-identical)",
            f"  select_many: {n_decisions} cap decisions over "
            f"{n_configs} configs in {mean_s * 1e3:.2f} ms "
            f"({configs_per_s / 1e6:.1f} M configs/s)",
        ]
    )
    write_artifact("selection_runtime.txt", text)
    print("\n" + text)

    # The engine's acceptance gate: warm evaluate at least 3x the seed
    # baseline (0.51 s), i.e. within the 0.17 s budget, with slack for
    # machine jitter.
    assert warm_evaluate_s < 0.25
