"""Figure 3: the example cluster classification tree.

Paper shape being reproduced: a small tree (the paper's example has four
internal comparisons on normalized counter metrics) that classifies
kernels into the offline clusters with good training accuracy, using
only data available after the two sample iterations.

The timed operation is classifier training (tree induction).
"""

import numpy as np

from repro.core import ClusterClassifier, cluster_kernels
from repro.core.classifier import SAMPLE_FEATURE_NAMES

from conftest import write_artifact


def test_fig3_classification_tree(
    benchmark, exact_apu, suite, suite_frontiers, char_store
):
    train = [k for k in suite if k.benchmark != "LU"]
    chars = char_store.characterize(train)
    clustering = cluster_kernels({c.kernel_uid: suite_frontiers[c.kernel_uid] for c in chars})
    labels = [clustering.labels[c.kernel_uid] for c in chars]

    clf = benchmark(
        lambda: ClusterClassifier(max_depth=4, min_samples_leaf=2).fit(chars, labels)
    )

    text = "Fig 3: cluster classification tree\n" + clf.render()
    write_artifact("fig3_tree.txt", text)
    print("\n" + text)

    # Small tree, like the paper's four-comparison example.
    assert clf.tree.depth() <= 4
    assert 2 <= clf.tree.n_leaves() <= 16

    # Splits reference the sample-run feature set only.
    rendered = clf.render()
    assert any(name in rendered for name in SAMPLE_FEATURE_NAMES)

    # Good training accuracy from sample-run features alone.
    correct = sum(
        clf.predict(c.cpu_sample, c.gpu_sample) == lab
        for c, lab in zip(chars, labels)
    )
    assert correct / len(chars) >= 0.75

    # Every leaf predicts a real cluster id.
    preds = {clf.predict(c.cpu_sample, c.gpu_sample) for c in chars}
    assert preds.issubset(set(np.unique(labels)))
