"""Figure 7: the power-performance frontier of LU Small.

Paper shape being reproduced (Section V-D):

* a performance *cliff* at the CPU-to-GPU device switch — the paper
  jumps from 10.4% to 89.0% of peak performance across a 0.4 W power
  step; we require a jump of at least 25 percentage points;
* every 3-or-4-thread CPU configuration draws more power than the best
  1-2-thread configurations (meeting tight caps requires choosing core
  count, not just frequency);
* the GPU dominates the frontier's top.

The timed operation is frontier derivation for LU Small.
"""

from repro.core import ParetoFrontier
from repro.evaluation import render_frontier_table
from repro.hardware import Device

from conftest import write_artifact

KERNEL = "LU/Small/LUDecomposition"


def test_fig7_lu_small_frontier(benchmark, exact_apu, suite):
    kernel = suite.get(KERNEL)
    measurements = exact_apu.run_all_configs(kernel)

    frontier = benchmark(ParetoFrontier.from_measurements, measurements)

    text = render_frontier_table(frontier, title="Fig 7: frontier of LU Small")
    write_artifact("fig7_lu_frontier.txt", text)
    print("\n" + text)

    norm = [
        (p.power_w, p.performance / frontier.max_performance, p.config)
        for p in frontier
    ]

    # The CPU->GPU cliff: largest single step in normalized performance
    # along the frontier coincides with the device switch and is large.
    jumps = [
        (norm[i + 1][1] - norm[i][1], norm[i][2].device, norm[i + 1][2].device)
        for i in range(len(norm) - 1)
    ]
    biggest, dev_before, dev_after = max(jumps, key=lambda j: j[0])
    assert biggest > 0.25
    assert dev_before is Device.CPU and dev_after is Device.GPU

    # Before the cliff the CPU tops out low (paper: 10.4%; we allow 40%).
    cliff_idx = jumps.index((biggest, dev_before, dev_after))
    assert norm[cliff_idx][1] < 0.40

    # Many-core CPU configs exceed the power of the pre-cliff region:
    # every 4-thread CPU config draws more than the cheapest 2-thread one.
    power_of = {
        m.config: m.total_power_w for m in measurements
    }
    four_thread = [
        p for c, p in power_of.items()
        if c.device is Device.CPU and c.n_threads == 4
    ]
    two_thread_min = min(
        p for c, p in power_of.items()
        if c.device is Device.CPU and c.n_threads <= 2
    )
    assert min(four_thread) > two_thread_min

    # GPU owns the top of the frontier.
    assert frontier[-1].config.is_gpu
