"""Figure 5: percent of optimal performance by benchmark (under-limit).

Paper shape being reproduced: "Model+FL has a clear advantage over the
other methods in maintaining high performance across the set of
benchmarks.  Over all benchmarks, Model+FL achieves a minimum of 74.9%
of oracle performance, while the state-of-the-practice methods, CPU+FL
and GPU+FL, achieve only 13.3% and 62.4% of oracle performance for
their respective worst-case benchmarks."

The timed operation is per-group metric aggregation.
"""

import math

from repro.evaluation import render_group_bars, summarize_by_group

from conftest import write_artifact


def test_fig5_underlimit_performance_by_benchmark(benchmark, loocv_report):
    by_group = benchmark(summarize_by_group, loocv_report.records)

    series = {
        g: {s.method: s.under_perf_pct for s in summaries}
        for g, summaries in by_group.items()
    }
    text = render_group_bars(
        series, title="Fig 5: % of oracle performance (under-limit cases)"
    )
    write_artifact("fig5_underlimit_perf.txt", text)
    print("\n" + text)

    def worst(method):
        vals = [
            v[method]
            for v in series.values()
            if method in v and not math.isnan(v[method])
        ]
        return min(vals)

    # Model+FL's worst benchmark stays strong; CPU+FL's collapses.
    assert worst("Model+FL") > 65.0          # paper: 74.9
    assert worst("CPU+FL") < worst("Model+FL")
    assert worst("CPU+FL") < 60.0            # paper: 13.3 (simulator milder)

    # All eight benchmark/input groups are reported.
    assert len(series) == 8
