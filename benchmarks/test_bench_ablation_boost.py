"""Ablation: opportunistic overclocking (paper Section VI).

"Few hardware features are exposed that directly affect power
consumption, but one that we did not yet include in our machine
configuration space is opportunistic overclocking.  This feature allows
the CPU to increase its frequency beyond user-selectable levels, but
only when there is enough thermal headroom; if the chip is too hot,
such frequency boosting will not engage."

This ablation enables the boost capability on the simulated machine and
measures, across the suite:

* how many kernels boost at all (thermal gating must bite — hot kernels
  get nothing);
* the CPU top-P-state speedup distribution;
* the effect on the CPU-vs-GPU crossover: boost narrows — but must not
  erase — the GPU's advantage on GPU-friendly kernels.

The timed operation is a boosted ground-truth sweep of one kernel.
"""

import numpy as np

from repro.hardware import BoostPolicy, Configuration, NoiseModel, TrinityAPU

from conftest import write_artifact

TOP = Configuration.cpu(3.7, 4)


def test_ablation_opportunistic_boost(benchmark, exact_apu, suite):
    boosted = TrinityAPU(noise=NoiseModel.exact(), seed=0, boost=BoostPolicy())

    kernel0 = suite.get("LULESH/Large/CalcFBHourglassForce")
    benchmark(
        lambda: [boosted.true_time_s(kernel0, c) for c in boosted.config_space]
    )

    speedups, duties, power_deltas = [], [], []
    for k in suite:
        t_base = exact_apu.true_time_s(k, TOP)
        t_boost = boosted.true_time_s(k, TOP)
        speedups.append(t_base / t_boost)
        out = boosted._boost_outcome(k.characteristics, TOP)
        duties.append(out.duty_cycle)
        power_deltas.append(
            boosted.true_total_power_w(k, TOP) - exact_apu.true_total_power_w(k, TOP)
        )

    speedups = np.array(speedups)
    duties = np.array(duties)
    n_boosting = int(np.sum(duties > 0.01))
    n_gated = int(np.sum(duties < 0.01))
    n_partial = int(np.sum((duties > 0.01) & (duties < 0.99)))

    text = "\n".join(
        [
            "Ablation: opportunistic overclocking at CPU 3.7GHz x4",
            f"  kernels boosting:      {n_boosting}/{len(suite)}",
            f"  thermally gated (off): {n_gated}/{len(suite)}",
            f"  partial duty cycle:    {n_partial}/{len(suite)}",
            f"  speedup: mean {speedups.mean():.3f}, max {speedups.max():.3f}",
            f"  extra power: mean {np.mean(power_deltas):.2f} W, "
            f"max {np.max(power_deltas):.2f} W",
        ]
    )
    write_artifact("ablation_boost.txt", text)
    print("\n" + text)

    # Thermal gating bites: some kernels boost, some cannot.
    assert n_boosting > 0
    assert n_gated > 0
    # Boost never slows a kernel and never exceeds the hardware ratio.
    assert np.all(speedups >= 1.0 - 1e-12)
    assert np.all(speedups <= 4.2 / 3.7 + 1e-9)
    # Boost costs power exactly when it engages.
    for duty, delta in zip(duties, power_deltas):
        if duty > 0.01:
            assert delta > 0
        else:
            assert delta == 0

    # The GPU still wins on a strongly GPU-friendly kernel even with
    # CPU boost enabled (boost narrows, not erases, the gap).
    k = suite.get("LULESH/Large/CalcFBHourglassForce")
    gpu_best = min(
        boosted.true_time_s(k, c)
        for c in boosted.config_space.gpu_configs()
    )
    assert boosted.true_time_s(k, TOP) > gpu_best
