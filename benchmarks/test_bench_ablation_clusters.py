"""Ablation: cluster count (paper Section III-B).

"For the benchmarks and kernels we tested, we found empirically that
five clusters optimized the predictive ability of our system; using
fewer clusters resulted in over-generalized models, and using more
clusters resulted in over-specialized models."

This sweep measures predictive ability the way the paper means it:
leave-one-benchmark-out, train at each cluster count, and record the
held-out relative performance-prediction error.  We assert the
over-specialization side of the paper's curve (a large k degrades
held-out error relative to the paper's k = 5); on our simulator the
sample-anchored regressions soften the under-clustered regime, which
EXPERIMENTS.md documents as a deviation.

Silhouette per k is also reported for the clustering-structure view.

The timed operation is one offline training pass at the paper's k = 5
(clustering + per-cluster regression + tree) from precomputed
characterizations.
"""

import numpy as np

from repro.core import CPU_SAMPLE, GPU_SAMPLE, AdaptiveModel
from repro.core import cluster_kernels

from conftest import write_artifact

SWEEP_KS = (1, 2, 3, 5, 8, 20)


def test_ablation_cluster_count(
    benchmark, exact_apu, suite, suite_frontiers, char_store
):
    chars = {k.uid: char_store.characterization(k) for k in suite}
    samples = {
        k.uid: (exact_apu.run(k, CPU_SAMPLE), exact_apu.run(k, GPU_SAMPLE))
        for k in suite
    }

    def train_k5():
        train_chars = [
            chars[k.uid] for k in suite if k.benchmark != "LU"
        ]
        return AdaptiveModel.train(train_chars, n_clusters=5)

    model5 = benchmark(train_k5)
    assert model5.clustering.n_clusters == 5

    def held_out_error(n_clusters: int) -> float:
        errs = []
        for bench in suite.benchmarks():
            train_chars = [
                chars[k.uid] for k in suite if k.benchmark != bench
            ]
            model = AdaptiveModel.train(train_chars, n_clusters=n_clusters)
            for k in suite.for_benchmark(bench):
                cm, gm = samples[k.uid]
                pred = model.predict_kernel(cm, gm)
                for cfg, (_, pf) in pred.predictions.items():
                    truth = exact_apu.true_performance(k, cfg)
                    errs.append(abs(pf - truth) / truth)
        return float(np.mean(errs))

    errors = {k: held_out_error(k) for k in SWEEP_KS}
    silhouettes = {
        k: cluster_kernels(suite_frontiers, n_clusters=k).silhouette
        for k in SWEEP_KS
        if k > 1
    }

    lines = ["Ablation: cluster count vs held-out prediction error"]
    for k in SWEEP_KS:
        sil = silhouettes.get(k)
        sil_text = f"silhouette={sil:+.3f}" if sil is not None else "silhouette=   --"
        bar = "#" * int(errors[k] * 300)
        lines.append(
            f"  k={k:2d}  perf err={errors[k]:.4f}  {sil_text} |{bar}"
        )
    text = "\n".join(lines)
    write_artifact("ablation_clusters.txt", text)
    print("\n" + text)

    # Over-specialization: the paper's k=5 beats a heavily over-split
    # clustering on held-out error.
    assert errors[5] < errors[20]
    # The error curve stays in a sane band throughout.
    assert all(0.02 < e < 0.30 for e in errors.values())
    # Clustering structure is real at the paper's k.
    assert silhouettes[5] > 0.1
