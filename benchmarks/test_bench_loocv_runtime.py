"""End-to-end LOOCV runtime: the profile-once pipeline's receipt.

Times the full cross-validated evaluation two ways:

* **cold** — a fresh private :class:`CharacterizationStore`, so the run
  pays the exhaustive characterization sweep itself;
* **warm** — the process-shared store (already populated by the session
  ``loocv_report`` fixture), the steady state every repeated evaluation
  (ablations, sweeps, figure regeneration) runs in.

Both must produce records identical to the session report — caching
changes wall-clock time, never results.  The measured numbers, with the
per-phase breakdown from :class:`LOOCVReport.timings
<repro.evaluation.loocv.LOOCVTimings>`, are written to
``BENCH_loocv.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from repro.evaluation import run_loocv
from repro.profiling import CharacterizationStore
from repro.workloads import build_suite

from conftest import write_artifact

BENCH_PATH = Path(__file__).parent.parent / "BENCH_loocv.json"


def _timings_dict(report) -> dict:
    t = report.timings
    return {
        "profile_s": round(t.profile_s, 4),
        "train_s": round(t.train_s, 4),
        "evaluate_s": round(t.evaluate_s, 4),
        "wall_s": round(t.wall_s, 4),
        "n_jobs": t.n_jobs,
    }


def test_loocv_end_to_end_runtime(benchmark, loocv_report):
    suite = build_suite()

    # Cold: private store, nothing cached anywhere.
    t0 = time.perf_counter()
    cold = run_loocv(suite, seed=0, store=CharacterizationStore(seed=0))
    cold_wall = time.perf_counter() - t0

    # Warm: the shared store the session fixture already populated.
    warm = benchmark.pedantic(
        run_loocv, args=(suite,), kwargs={"seed": 0}, rounds=3, iterations=1
    )

    # Caching must never change results.
    assert cold.records == loocv_report.records
    assert warm.records == loocv_report.records

    payload = {
        "experiment": "run_loocv(seed=0) end to end",
        "records": len(warm.records),
        "cold": {"wall_s": round(cold_wall, 4), **_timings_dict(cold)},
        "warm": _timings_dict(warm),
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    text = "\n".join(
        [
            "End-to-end LOOCV runtime (profile-once pipeline)",
            f"  cold (fresh store): {cold_wall:6.2f} s  "
            f"(profile {cold.timings.profile_s:.2f} s, "
            f"train {cold.timings.train_s:.2f} s, "
            f"evaluate {cold.timings.evaluate_s:.2f} s)",
            f"  warm (shared store): {warm.timings.wall_s:6.2f} s  "
            f"(profile {warm.timings.profile_s:.2f} s, "
            f"train {warm.timings.train_s:.2f} s, "
            f"evaluate {warm.timings.evaluate_s:.2f} s)",
        ]
    )
    write_artifact("loocv_runtime.txt", text)
    print("\n" + text)

    # The warm path must actually skip the exhaustive sweep.  Since the
    # vectorized training engine, evaluation noise dominates both wall
    # clocks (train is ~10% of a run), so the wall comparison carries a
    # tolerance instead of demanding a strict win.
    assert warm.timings.profile_s < cold.timings.profile_s
    assert warm.timings.wall_s < cold_wall * 1.25
