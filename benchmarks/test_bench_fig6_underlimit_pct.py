"""Figure 6: percent of cases under the power limit, by benchmark.

Paper shape being reproduced: "Model+FL meets power constraints more
often than all other methods for all benchmark/input combinations
except SMC ... and LU Small" — i.e. Model+FL leads or ties nearly
everywhere, and LU is where frequency-limiting methods collapse
(GPU+FL ties at 57.1% on LU Small in the paper).

The timed operation is per-group metric aggregation.
"""

from repro.evaluation import render_group_bars, summarize_by_group

from conftest import write_artifact


def test_fig6_percent_underlimit_by_benchmark(benchmark, loocv_report):
    by_group = benchmark(summarize_by_group, loocv_report.records)

    series = {
        g: {s.method: s.pct_under_limit for s in summaries}
        for g, summaries in by_group.items()
    }
    text = render_group_bars(series, title="Fig 6: % of cases under limit")
    write_artifact("fig6_underlimit_pct.txt", text)
    print("\n" + text)

    # Model+FL leads (or nearly ties) every group.
    lead_count = 0
    for g, vals in series.items():
        best = max(vals.values())
        assert vals["Model+FL"] >= best - 10.0
        if vals["Model+FL"] >= best - 1e-9:
            lead_count += 1
    assert lead_count >= 6  # leads in at least 6 of 8 groups

    # GPU+FL collapses on LU (paper: ~57% on LU Small; cap at 70%).
    for g in ("LU Small", "LU Medium", "LU Large"):
        assert series[g]["GPU+FL"] < 70.0

    # CPU+FL hovers around three quarters everywhere (paper: ~76 overall).
    for g, vals in series.items():
        assert 55.0 < vals["CPU+FL"] < 95.0
