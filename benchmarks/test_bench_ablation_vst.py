"""Ablation: variance-stabilizing transform (paper Section VI).

"One idea is to apply a variance-stabilizing transformation to model
inputs and outputs during the training phase.  This would give less
weight to both very small and very large fitted model values."

We implement the transform as log-space fitting
(``AdaptiveModel.train(transform="log")``) and compare held-out
prediction error against the paper's baseline linear fit.  The
assertion is deliberately weak — the paper proposes, but never
evaluates, this feature — we only require the transform not to be
catastrophically worse, and we report both numbers.

The timed operation is offline training with the transform enabled.
"""

import numpy as np

from repro.core import CPU_SAMPLE, GPU_SAMPLE, AdaptiveModel

from conftest import write_artifact


def test_ablation_variance_stabilizing_transform(
    benchmark, exact_apu, suite, char_store
):
    train = [k for k in suite if k.benchmark != "LU"]
    chars = char_store.characterize(train)
    test = suite.for_benchmark("LU")
    samples = {
        k.uid: (exact_apu.run(k, CPU_SAMPLE), exact_apu.run(k, GPU_SAMPLE))
        for k in test
    }

    model_log = benchmark(
        lambda: AdaptiveModel.train(chars, transform="log")
    )
    model_lin = AdaptiveModel.train(chars, transform="none")

    def errors(model):
        perf_errs, power_errs = [], []
        for k in test:
            cm, gm = samples[k.uid]
            pred = model.predict_kernel(cm, gm)
            for cfg, (pw, pf) in pred.predictions.items():
                tp = exact_apu.true_total_power_w(k, cfg)
                tf = exact_apu.true_performance(k, cfg)
                power_errs.append(abs(pw - tp) / tp)
                perf_errs.append(abs(pf - tf) / tf)
        return float(np.mean(perf_errs)), float(np.mean(power_errs))

    lin_perf, lin_power = errors(model_lin)
    log_perf, log_power = errors(model_log)

    text = (
        "Ablation: variance-stabilizing (log) transform, held-out LU\n"
        f"  linear fit:  perf err {lin_perf:.4f}  power err {lin_power:.4f}\n"
        f"  log fit:     perf err {log_perf:.4f}  power err {log_power:.4f}"
    )
    write_artifact("ablation_vst.txt", text)
    print("\n" + text)

    # Both variants produce usable models (positive, finite predictions
    # with bounded held-out error).
    assert lin_perf < 0.4 and log_perf < 0.4
    assert lin_power < 0.15 and log_power < 0.15
    # The transform changes the fit (it is not a no-op).
    assert abs(log_perf - lin_perf) + abs(log_power - lin_power) > 1e-6
