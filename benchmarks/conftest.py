"""Shared fixtures for the per-table/figure benchmark harness.

Heavy artifacts (the cross-validated evaluation behind Table III and
Figures 4-9) are computed once per session and shared; each benchmark
file then times the operation specific to its artifact and asserts the
paper's shape properties.

Rendered artifacts are written to ``benchmarks/artifacts/`` so a
benchmark run leaves the regenerated tables/figures on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import AdaptiveModel, ParetoFrontier
from repro.evaluation import run_loocv
from repro.hardware import NoiseModel, TrinityAPU
from repro.profiling import CharacterizationStore
from repro.workloads import build_suite

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure next to the benchmarks."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    (ARTIFACT_DIR / name).write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def exact_apu():
    """Noise-free machine (ground truth == measurement)."""
    return TrinityAPU(noise=NoiseModel.exact(), seed=0)


@pytest.fixture(scope="session")
def suite():
    return build_suite()


@pytest.fixture(scope="session")
def loocv_report():
    """The paper's full cross-validated evaluation (Table III + Figs 4-9)."""
    return run_loocv(seed=0)


@pytest.fixture(scope="session")
def suite_frontiers(exact_apu, suite):
    """Ground-truth Pareto frontier of every suite kernel."""
    return {
        k.uid: ParetoFrontier.from_measurements(exact_apu.run_all_configs(k))
        for k in suite
    }


@pytest.fixture(scope="session")
def char_store(exact_apu):
    """Profile-once characterization store over the noise-free machine.

    Benchmarks that need exhaustive characterizations slice them from
    this shared store instead of each re-profiling the suite on all 42
    configurations.
    """
    return CharacterizationStore(exact_apu, seed=0)


def train_from_store(store, kernels, **train_kwargs):
    """Train an :class:`AdaptiveModel` from store-served
    characterizations and a cached dissimilarity submatrix."""
    return AdaptiveModel.train(
        store.characterize(kernels),
        dissimilarity=store.dissimilarity_submatrix(
            kernels,
            composition_weight=train_kwargs.get("composition_weight"),
        ),
        **train_kwargs,
    )
