"""Table I / Figure 2: Pareto frontier of LULESH CalcFBHourglassForce.

Paper shape being reproduced:

* the frontier's low-power end is CPU configurations, its high-power /
  high-performance end is GPU configurations (Table I rows);
* the first GPU configuration uses the GPU's *lowest* frequency;
* successive GPU frontier rows differ in *host CPU* frequency (launch
  overhead runs on the CPU);
* the best CPU configuration reaches well under the GPU's performance
  (paper: 0.66 vs 0.84+).

The timed operation is frontier derivation from the 42 per-config
measurements (the per-kernel step of the offline stage).
"""

from repro.core import ParetoFrontier
from repro.evaluation import render_frontier_table
from repro.hardware import Device, GPU_FREQS_GHZ

from conftest import write_artifact

KERNEL = "LULESH/Large/CalcFBHourglassForce"


def test_fig2_table1_frontier(benchmark, exact_apu, suite):
    kernel = suite.get(KERNEL)
    measurements = exact_apu.run_all_configs(kernel)

    frontier = benchmark(ParetoFrontier.from_measurements, measurements)

    text = render_frontier_table(
        frontier, title=f"Table I / Fig 2: frontier of {KERNEL}"
    )
    write_artifact("table1_fig2_frontier.txt", text)
    print("\n" + text)

    devices = [p.config.device for p in frontier]
    # Low end CPU, high end GPU.
    assert devices[0] is Device.CPU
    assert devices[-1] is Device.GPU
    assert Device.CPU in devices and Device.GPU in devices
    # Device order along the frontier: all CPU rows precede all GPU rows.
    first_gpu = devices.index(Device.GPU)
    assert all(d is Device.GPU for d in devices[first_gpu:])

    # First GPU frontier config at the lowest GPU frequency (Table I).
    gpu_points = [p for p in frontier if p.config.is_gpu]
    assert abs(gpu_points[0].config.gpu_freq_ghz - GPU_FREQS_GHZ[0]) < 1e-9
    # GPU frontier rows vary in host CPU frequency.
    host_freqs = {p.config.cpu_freq_ghz for p in gpu_points}
    assert len(host_freqs) >= 2

    # The best CPU configuration is well below GPU performance.
    norm = {p.config: p.performance / frontier.max_performance for p in frontier}
    best_cpu = max(v for c, v in norm.items() if not c.is_gpu)
    assert best_cpu < 0.85

    # Power range matches Table I's scale (roughly 10-35 W).
    assert 8.0 < frontier.min_power_w < 20.0
    assert frontier[-1].power_w < 45.0
