"""Ablation: variance-aware (risk-averse) selection (paper Section VI).

"Taking variance into account when predicting best configurations could
also improve model accuracy when applied to new applications.  If the
confidence interval for a prediction is large, it may be wise to choose
another configuration with smaller confidence interval and lower
expected performance."

We run the Model method's cap sweep over held-out LU kernels three
ways — plain, fixed 5% risk margin, and confidence-bound risk-averse
(z=2) — and report cap violations and mean under-limit performance for
each.  Risk-aware variants must not violate more often than plain
selection.

The timed operation is one risk-averse selection.
"""

import numpy as np

from repro.core import (
    CPU_SAMPLE,
    GPU_SAMPLE,
    Scheduler,
)
from repro.methods import Oracle

from conftest import train_from_store, write_artifact


def test_ablation_risk_aware_selection(benchmark, exact_apu, suite, char_store):
    train = [k for k in suite if k.benchmark != "LU"]
    model = train_from_store(char_store, train)
    oracle = Oracle(exact_apu)
    sched = Scheduler()
    test = suite.for_benchmark("LU")

    preds = {}
    for k in test:
        cm = exact_apu.run(k, CPU_SAMPLE)
        gm = exact_apu.run(k, GPU_SAMPLE)
        preds[k.uid] = model.predict_kernel(cm, gm, with_uncertainty=True)

    k0 = test[0]
    benchmark(
        sched.select, preds[k0.uid], 20.0, risk_averse=True, confidence_z=2.0
    )

    def sweep(**kw):
        violations, perf_ratios = 0, []
        total = 0
        for k in test:
            for cap in oracle.caps_for(k):
                total += 1
                cfg = sched.select(preds[k.uid], cap, **kw).config
                true_p = exact_apu.true_total_power_w(k, cfg)
                o_cfg = oracle.decide(k, cap).config
                if true_p > cap * (1 + 1e-9):
                    violations += 1
                else:
                    perf_ratios.append(
                        exact_apu.true_performance(k, cfg)
                        / exact_apu.true_performance(k, o_cfg)
                    )
        return violations, total, float(np.mean(perf_ratios))

    plain = sweep()
    margin = sweep(risk_margin=0.05)
    averse = sweep(risk_averse=True, confidence_z=2.0)

    def fmt(name, r):
        v, t, p = r
        return f"  {name:<22} violations {v}/{t}  under-limit perf {p:.3f}"

    text = "\n".join(
        [
            "Ablation: risk-aware selection on held-out LU",
            fmt("plain", plain),
            fmt("risk margin 5%", margin),
            fmt("risk-averse (z=2)", averse),
        ]
    )
    write_artifact("ablation_risk.txt", text)
    print("\n" + text)

    # Risk-aware variants never violate more than plain selection.
    assert margin[0] <= plain[0]
    assert averse[0] <= plain[0]
    # And they pay at most a modest performance price.
    assert margin[2] > plain[2] - 0.15
    assert averse[2] > plain[2] - 0.15
