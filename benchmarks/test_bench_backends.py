"""Backend zoo: per-backend evaluation and cross-architecture transfer.

Two questions, answered with numbers written to ``BENCH_backends.json``
at the repo root:

* Does the full pipeline (characterize -> cluster -> regress ->
  classify -> schedule) hold up on every registered hardware backend,
  not just Trinity?  (Per-backend LOOCV summaries.)
* How much of a model trained on one architecture carries over to
  another, and what does k-sample recalibration buy?  (The transfer
  matrix over ordered backend pairs.)

Shape assertions: each backend's model stays well above the
lowest-power-fallback floor; zero-shot transfer is always worse than
native training; recalibration monotonically narrows the power-error
gap at the largest k.

The timed operation is one full transfer experiment (train on Trinity,
evaluate with all recalibration budgets on the big.LITTLE part).
"""

import json
from pathlib import Path

from repro.evaluation import run_loocv, summarize
from repro.evaluation.transfer import run_transfer
from repro.hardware.backend import backend_names

from conftest import write_artifact

BENCH_PATH = Path(__file__).parent.parent / "BENCH_backends.json"

PAIRS = (
    ("trinity", "biglittle"),
    ("trinity", "mpsoc"),
    ("biglittle", "mpsoc"),
)


def _model_summary(records):
    rows = summarize(records)
    by_name = {s.method: s for s in rows}
    model = by_name.get("Model") or by_name[
        min(by_name, key=lambda n: 0 if "Model" in n else 1)
    ]
    return model


def test_backend_zoo_and_transfer(benchmark, suite):
    backends = {}
    for name in backend_names():
        report = run_loocv(seed=0, backend=name)
        model = _model_summary(report.records)
        backends[name] = {
            "records": len(report.records),
            "model_pct_under_limit": round(model.pct_under_limit, 2),
            "model_under_perf_pct": round(model.under_perf_pct, 2),
            "wall_s": round(report.timings.wall_s, 4),
        }
        # The model must stay a real method on every machine: mostly
        # compliant and well above half of oracle performance.
        assert model.pct_under_limit > 75.0, name
        assert model.under_perf_pct > 60.0, name

    transfer = benchmark.pedantic(
        run_transfer,
        args=("trinity", "biglittle"),
        kwargs={"seed": 0},
        rounds=1,
        iterations=1,
    )
    reports = {("trinity", "biglittle"): transfer}
    for pair in PAIRS[1:]:
        reports[pair] = run_transfer(*pair, seed=0)

    transfers = []
    for (a, b), r in reports.items():
        zero, best = r.point(0), r.point(max(r.ks))
        # Native training dominates any transfer on power accuracy, and
        # recalibration narrows zero-shot's power error.
        assert r.native.power_mape < min(p.power_mape for p in r.transferred)
        assert best.power_mape < zero.power_mape
        transfers.append(r.to_dict())

    payload = {"backends": backends, "transfers": transfers}
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = ["Backend zoo (LOOCV, seed 0)"]
    for name, row in sorted(backends.items()):
        lines.append(
            f"  {name:<10} {row['records']:>5} records, model "
            f"{row['model_pct_under_limit']:5.1f}% under limit, "
            f"{row['model_under_perf_pct']:5.1f}% of oracle perf"
        )
    lines.append("Transfer (power MAPE%, zero-shot -> best k -> native)")
    for r in transfers:
        zero = r["transferred"][0]
        best = r["transferred"][-1]
        lines.append(
            f"  {r['train_backend']:>9} -> {r['eval_backend']:<9} "
            f"{100 * zero['power_mape']:6.1f} -> "
            f"{100 * best['power_mape']:6.1f} -> "
            f"{100 * r['native']['power_mape']:6.1f}"
        )
    text = "\n".join(lines)
    write_artifact("backends.txt", text)
    print("\n" + text)
