"""Decision-server throughput: the batching receipt.

Three measurements on a warm :class:`~repro.server.service.
DecisionService` (all 65 suite kernels warmed, cap-sweep tables
memoized):

* **batched engine** throughput — 4096-request mixed batches answered
  by the grouped sweep (:func:`repro.server.engine.decide_batch`),
  reported as decisions/s; this is the pytest-benchmark-timed path;
* **unbatched** throughput — the same requests answered one at a time
  through :meth:`DecisionService.decide` (the per-request
  ``Scheduler.select`` path a naive server would take);
* the **admission table** — the threaded batching front end driven by
  open-loop Poisson arrivals at several offered rates, with sustained
  rate and p50/p99/p999 latency per point.

Numbers land in ``BENCH_server.json`` at the repo root.  The
acceptance gates: batched >= 5x unbatched, batched >= 1M decisions/s,
and the front end actually coalesces (batches formed < requests
served).
"""

import json
import time
from pathlib import Path

from repro.server import (
    admission_benchmark,
    build_default_service,
    decide_batch,
    render_reports,
    request_pool,
)
from repro.telemetry import counter

from conftest import write_artifact

BENCH_PATH = Path(__file__).parent.parent / "BENCH_server.json"

BATCH_N = 4096
UNBATCHED_N = 2000
OFFERED_RATES = (2_000.0, 20_000.0, 60_000.0)
RATE_DURATION_S = 0.4


def test_server_throughput(benchmark):
    service = build_default_service(seed=0)
    failures = service.warm()
    assert not failures, f"warm-up failures: {failures}"

    pool = request_pool(service.kernel_uids, n=BATCH_N, seed=0)
    uids = [r.kernel_uid for r in pool]
    caps = [r.power_cap_w for r in pool]

    # -- batched engine: one grouped sweep over the whole pool ---------------
    snap = service.snapshot

    def run_batch():
        return decide_batch(
            snap.scheduler, snap.predictions, uids, caps, tables=snap.tables
        )

    batch = benchmark(run_batch)
    assert len(batch) == BATCH_N
    # Tight caps in the pool legitimately fall below some kernels'
    # cheapest configuration; those take the fallback path, the rest
    # must be feasible.
    assert batch.feasible.mean() > 0.9
    batched_s = benchmark.stats.stats.mean
    batched_rps = BATCH_N / batched_s

    # -- unbatched: the same decisions one request at a time -----------------
    start = time.perf_counter()
    for request in pool[:UNBATCHED_N]:
        result = service.decide(request)
        assert result.ok
    unbatched_s = time.perf_counter() - start
    unbatched_rps = UNBATCHED_N / unbatched_s

    # -- admission table: threaded front end under Poisson load --------------
    requests_before = counter("server.requests").value
    batches_before = counter("server.batches").value
    reports = admission_benchmark(
        service, pool, OFFERED_RATES, RATE_DURATION_S, seed=0
    )
    requests_served = counter("server.requests").value - requests_before
    batches_formed = counter("server.batches").value - batches_before

    payload = {
        "experiment": "decision server throughput",
        "engine": {
            "batch_requests": BATCH_N,
            "distinct_kernels": len(service.kernel_uids),
            "batched_mean_s": round(batched_s, 6),
            "batched_decisions_per_s": round(batched_rps),
            "unbatched_requests": UNBATCHED_N,
            "unbatched_s": round(unbatched_s, 6),
            "unbatched_decisions_per_s": round(unbatched_rps),
            "speedup": round(batched_rps / unbatched_rps, 1),
        },
        "serving": {
            "requests_served": requests_served,
            "batches_formed": batches_formed,
            "rates": [vars(r) for r in reports],
        },
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    text = "\n".join(
        [
            "Decision server throughput",
            f"  batched engine: {BATCH_N} requests in "
            f"{batched_s * 1e3:.2f} ms "
            f"({batched_rps / 1e6:.2f} M decisions/s)",
            f"  unbatched:      {UNBATCHED_N} requests in "
            f"{unbatched_s * 1e3:.2f} ms "
            f"({unbatched_rps / 1e3:.1f} k decisions/s, "
            f"{batched_rps / unbatched_rps:.0f}x slower than batched)",
            f"  front end:      {requests_served} requests coalesced "
            f"into {batches_formed} batches",
            "",
            render_reports(reports),
        ]
    )
    write_artifact("server_throughput.txt", text)
    print("\n" + text)

    # The server's acceptance gates.
    assert batched_rps >= 5 * unbatched_rps
    assert batched_rps >= 1e6
    assert 0 < batches_formed < requests_served
