"""Offline training engine runtime: cold vs warm per-phase breakdown.

Times the offline training stage (cluster → regression → CART) across
all leave-one-benchmark-out folds two ways:

* **cold** — each fold trains standalone: PAM runs its BUILD phase and
  every cluster regression rebuilds its design matrices (the pre-engine
  behaviour, still reachable by passing no warm-start arguments);
* **warm** — the training engine's steady state
  (``docs/TRAINING_ENGINE.md``): folds seed PAM from the full-suite
  clustering and fit regressions from the shared sufficient-statistics
  pool, with per-phase timings taken from the telemetry span tree and
  the engine's cache economy from the ``train.*`` counters.

Both passes must select the same cluster partitions — the engine
changes wall-clock time, not results.  The measured numbers are written
to ``BENCH_train.json`` at the repo root, alongside the sibling
``BENCH_loocv.json`` / ``BENCH_selection.json`` artifacts.
"""

import json
import time
from pathlib import Path

from repro.core import (
    AdaptiveModel,
    cluster_kernels,
    resolve_warm_medoids,
)
from repro.telemetry import counter, get_tracer

from conftest import write_artifact

BENCH_PATH = Path(__file__).parent.parent / "BENCH_train.json"

_PHASES = ("offline/cluster", "offline/regression", "offline/cart")
_COUNTERS = (
    "train.gram.hits",
    "train.gram.misses",
    "train.gram.sum_hits",
    "train.gram.downdates",
    "train.pam.builds",
    "train.pam.swaps",
    "train.cart.nodes",
    "train.cart.splits",
)


def _phase_totals() -> dict[str, float]:
    """Total seconds per training phase, summed over the span tree."""
    totals = dict.fromkeys(_PHASES, 0.0)

    def walk(node):
        if node["name"] in totals:
            totals[node["name"]] += node["total_s"]
        for child in node.get("children", ()):
            walk(child)

    for root in get_tracer().snapshot():
        walk(root)
    return totals


def _counter_values() -> dict[str, int]:
    return {name: counter(name).value for name in _COUNTERS}


def _delta(after: dict, before: dict) -> dict:
    return {k: round(after[k] - before[k], 6) for k in after}


def _pam_objective(model: AdaptiveModel, uids: list, D) -> float:
    """Total within-cluster dissimilarity to medoids (PAM's objective)."""
    clustering = model.clustering
    pos = {u: i for i, u in enumerate(uids)}
    medoid_pos = {c: pos[m] for c, m in enumerate(clustering.medoid_uids)}
    return sum(D[pos[u], medoid_pos[c]] for u, c in clustering.labels.items())


def test_training_engine_runtime(char_store, suite):
    all_kernels = list(suite)
    all_uids = [k.uid for k in all_kernels]
    char_store.characterize(all_kernels)
    folds = [
        [k for k in suite if k.benchmark != b] for b in suite.benchmarks()
    ]
    fold_inputs = [
        (
            char_store.characterize(kernels),
            char_store.dissimilarity_submatrix(kernels),
            {k.uid for k in kernels},
        )
        for kernels in folds
    ]

    # Cold: every fold trains standalone (BUILD + design-matrix fits).
    spans0, counters0 = _phase_totals(), _counter_values()
    t0 = time.perf_counter()
    cold_models = [
        AdaptiveModel.train(chars, dissimilarity=D)
        for chars, D, _ in fold_inputs
    ]
    cold_s = time.perf_counter() - t0
    spans1, counters1 = _phase_totals(), _counter_values()

    # Warm: the engine's steady state — reference clustering computed
    # once, Gram pool seeded, every fold warm-started and downdated.
    full_D = char_store.dissimilarity_submatrix(all_kernels)
    full_clustering = cluster_kernels(
        all_uids, n_clusters=5, dissimilarity=full_D
    )
    pool = char_store.gram_pool()
    pool.seed_cluster_sums(
        (
            full_clustering.members(c)
            for c in range(full_clustering.n_clusters)
        ),
        {c.kernel_uid: c for c in char_store.characterize(all_kernels)},
    )
    t0 = time.perf_counter()
    warm_models = [
        AdaptiveModel.train(
            chars,
            dissimilarity=D,
            initial_medoid_uids=resolve_warm_medoids(
                full_clustering, all_uids, full_D, train_uids
            ),
            gram_pool=pool,
        )
        for chars, D, train_uids in fold_inputs
    ]
    warm_s = time.perf_counter() - t0
    spans2, counters2 = _phase_totals(), _counter_values()

    # The engine must not degrade what is learned: warm-started SWAP
    # converges to a local optimum whose PAM objective matches the cold
    # BUILD+SWAP optimum (the two may be different — equally scoring —
    # partitions; on the paper's seeded pipeline they coincide exactly,
    # which the record-identity tests pin).
    for (chars, D, _), cold_m, warm_m in zip(
        fold_inputs, cold_models, warm_models
    ):
        uids = [c.kernel_uid for c in chars]
        cold_obj = _pam_objective(cold_m, uids, D)
        warm_obj = _pam_objective(warm_m, uids, D)
        assert warm_obj <= cold_obj * 1.05

    cold_phases = _delta(spans1, spans0)
    warm_phases = _delta(spans2, spans1)
    payload = {
        "experiment": "offline training, all LOOCV folds (n=%d)" % len(folds),
        "cold": {"train_s": round(cold_s, 4), "phases_s": cold_phases},
        "warm": {
            "train_s": round(warm_s, 4),
            "phases_s": warm_phases,
            "counters": _delta(counters2, counters1),
        },
        "counters_cold": _delta(counters1, counters0),
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        "Offline training runtime across LOOCV folds (cold vs warm engine)",
        f"  cold: {cold_s * 1e3:7.1f} ms total",
        f"  warm: {warm_s * 1e3:7.1f} ms total",
    ]
    for phase in _PHASES:
        lines.append(
            f"    {phase:<22} cold {cold_phases[phase] * 1e3:7.1f} ms   "
            f"warm {warm_phases[phase] * 1e3:7.1f} ms"
        )
    text = "\n".join(lines)
    write_artifact("train_runtime.txt", text)
    print("\n" + text)
