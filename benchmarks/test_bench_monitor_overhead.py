"""Monitor overhead: the serving path with the monitor attached.

The continuous monitoring layer (``repro.telemetry.monitor``) adds
three costs to a live decision server: the sampling thread snapshots
the registry on an interval, the SLO engine evaluates burn rates over
the ring, and the batching front end captures slow/shed/error
exemplars per batch.  This benchmark prices all three at once by
driving the threaded server with open-loop Poisson arrivals twice —
bare, then under a :class:`~repro.telemetry.monitor.Monitor` with the
default server SLOs and a fast 50 ms sampling interval — and compares
sustained throughput.

The offered rate sits well below the server's saturation point, so
the bare run sustains ~the offered rate and any monitor-induced slowdown
shows up directly in the ratio.  The Prometheus text renderer is timed
separately on the monitored run's final snapshot (it runs on the scrape
path, never the serving path).

Numbers land in ``BENCH_monitor.json`` at the repo root.  The
acceptance gate: monitored sustained throughput >= 0.95x bare.
"""

import json
from pathlib import Path

from repro.server import (
    admission_benchmark,
    build_default_service,
    render_reports,
    request_pool,
)
from repro.telemetry.monitor import (
    Monitor,
    default_server_slos,
    render_prometheus,
)

from conftest import write_artifact

BENCH_PATH = Path(__file__).parent.parent / "BENCH_monitor.json"

POOL_N = 4096
OFFERED_RPS = 10_000.0
DURATION_S = 0.4
ROUNDS = 2
SAMPLE_INTERVAL_S = 0.05
MIN_THROUGHPUT_RATIO = 0.95


def test_monitor_overhead(benchmark):
    service = build_default_service(seed=0)
    failures = service.warm()
    assert not failures, f"warm-up failures: {failures}"
    pool = request_pool(service.kernel_uids, n=POOL_N, seed=0)

    def run_once():
        (report,) = admission_benchmark(
            service, pool, (OFFERED_RPS,), DURATION_S, seed=0
        )
        return report

    # Interleave bare/monitored rounds and keep the best of each so a
    # transient stall on the shared CI box doesn't masquerade as monitor
    # overhead; the gate compares steady-state capability, not one draw.
    # A fresh Monitor per monitored round keeps the exemplar hooks
    # detached during the bare runs (attaching is Monitor.__init__'s job).
    bare_runs, monitored_runs = [], []
    samples = exemplars = 0
    snapshot = None
    for _ in range(ROUNDS):
        bare_runs.append(run_once())
        with Monitor(slos=default_server_slos()) as monitor:
            monitor.start(interval_s=SAMPLE_INTERVAL_S)
            monitored_runs.append(run_once())
            monitor.stop()
            monitor.tick()
            samples += len(monitor.store)
            exemplars += monitor.exemplars.count()
            snapshot = monitor.registry_snapshot()
    bare = max(bare_runs, key=lambda r: r.sustained_rps)
    monitored = max(monitored_runs, key=lambda r: r.sustained_rps)

    assert samples >= ROUNDS * 2, "sampling thread never ran"
    assert exemplars >= 1, "no exemplars captured under load"

    # -- scrape path: Prometheus text exposition off the final snapshot -----
    text = benchmark(render_prometheus, snapshot)
    assert "repro_server_requests_total" in text
    render_s = benchmark.stats.stats.mean
    series = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )

    ratio = monitored.sustained_rps / bare.sustained_rps
    payload = {
        "experiment": "monitor overhead on the serving path",
        "offered_rps": OFFERED_RPS,
        "duration_s": DURATION_S,
        "bare": {
            "sustained_rps": round(bare.sustained_rps),
            "completed": bare.completed,
            "shed": bare.shed,
            "p99_us": round(bare.p99_us, 1),
        },
        "monitored": {
            "sustained_rps": round(monitored.sustained_rps),
            "completed": monitored.completed,
            "shed": monitored.shed,
            "p99_us": round(monitored.p99_us, 1),
            "sample_interval_s": SAMPLE_INTERVAL_S,
            "ring_samples": samples,
            "exemplars_captured": exemplars,
        },
        "throughput_ratio": round(ratio, 4),
        "min_ratio": MIN_THROUGHPUT_RATIO,
        "prometheus_render": {
            "mean_s": round(render_s, 6),
            "series": series,
        },
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    report = "\n".join(
        [
            "Monitor overhead on the serving path",
            f"  offered {OFFERED_RPS:,.0f} req/s for {DURATION_S} s "
            f"(pool of {POOL_N} requests)",
            "",
            render_reports([bare, monitored]),
            "",
            f"  throughput ratio (monitored / bare): {ratio:.4f} "
            f"(gate >= {MIN_THROUGHPUT_RATIO})",
            f"  ring samples: {samples}, exemplars: {exemplars}",
            f"  prometheus render: {series} series in "
            f"{render_s * 1e6:.0f} us",
        ]
    )
    write_artifact("monitor_overhead.txt", report)
    print("\n" + report)

    # The monitoring layer's acceptance gate: within 5% of bare throughput.
    assert ratio >= MIN_THROUGHPUT_RATIO
