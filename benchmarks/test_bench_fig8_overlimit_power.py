"""Figure 8: power relative to the oracle in over-limit cases.

Paper shape being reproduced: "Model+FL uses less power than the other
methods for all of the benchmark/input combinations except LULESH Large
... and LU Small" — i.e. when the model does violate a cap, it violates
it modestly (paper average: 6% over), while GPU+FL overshoots massively
(paper: 137% of oracle power on average, +77% on LU Large).

The timed operation is per-group metric aggregation.
"""

import math

from repro.evaluation import render_group_bars, summarize_by_group

from conftest import write_artifact


def test_fig8_overlimit_power_by_benchmark(benchmark, loocv_report):
    by_group = benchmark(summarize_by_group, loocv_report.records)

    series = {
        g: {s.method: s.over_power_pct for s in summaries}
        for g, summaries in by_group.items()
    }
    text = render_group_bars(
        series,
        title="Fig 8: % of oracle power (over-limit cases)",
        bar_scale=150.0,
    )
    write_artifact("fig8_overlimit_power.txt", text)
    print("\n" + text)

    def values(method):
        return [
            v[method]
            for v in series.values()
            if method in v and not math.isnan(v[method])
        ]

    # GPU+FL's violations are by far the most severe.
    assert max(values("GPU+FL")) > 130.0
    gpu_mean = sum(values("GPU+FL")) / len(values("GPU+FL"))
    for method in ("Model", "Model+FL", "CPU+FL"):
        vals = values(method)
        if vals:
            assert sum(vals) / len(vals) < gpu_mean

    # Model-method violations are modest: every group < 150% of oracle
    # and most groups close to parity.
    for method in ("Model", "Model+FL"):
        vals = values(method)
        for v in vals:
            assert v < 150.0
        assert sum(vals) / len(vals) < 130.0
