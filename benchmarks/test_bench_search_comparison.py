"""Adaptation-cost experiment: model vs search-based strategies.

The paper's abstract: the model "requires only two iterations to select
a configuration, which provides a significant advantage over exhaustive
search-based strategies."  This experiment runs the model (LU held
out), exhaustive search, and hill climbing over the LU kernels' caps,
under realistic measurement noise, recording decision quality *and*
online cost (kernel iterations spent at not-yet-chosen configurations).

Shape assertions:

* the model spends 2 iterations per kernel; exhaustive spends 42;
* exhaustive's decisions are near-oracle (it measured everything);
* the model retains most of exhaustive's quality at ~5 % of its cost;
* hill climbing sits between them in cost and is *worse* than the model
  on LU (its frontier cliff strands local search on the wrong device
  at mid-range caps) or at best comparable.

The timed operation is one exhaustive-search decision (first cap).
"""

import numpy as np

from repro.core import train_model
from repro.evaluation import evaluate_suite, summarize
from repro.hardware import TrinityAPU
from repro.methods import ExhaustiveSearch, HillClimbing, ModelMethod, Oracle
from repro.profiling import ProfilingLibrary

from conftest import write_artifact


def test_search_strategy_comparison(benchmark, suite):
    apu = TrinityAPU(seed=0)  # realistic noise: searches can be misled
    oracle = Oracle(apu)
    test = suite.for_benchmark("LU")

    library = ProfilingLibrary(apu, seed=0)
    model = train_model(library, [k for k in suite if k.benchmark != "LU"])

    methods = [
        ModelMethod(model, ProfilingLibrary(apu, seed=1)),
        ExhaustiveSearch(apu, seed=2),
        HillClimbing(apu, seed=3),
    ]
    records = evaluate_suite(apu, oracle, methods, test)
    summaries = {s.method: s for s in summarize(records)}

    # Online cost: distinct kernel iterations spent per kernel before
    # decisions settle (read from each method's own measurement state).
    model_method, exhaustive, hillclimb = methods
    cost = {
        "Model": 2.0,  # the two sample iterations, by construction
        "Exhaustive": float(
            np.mean([len(t) for t in exhaustive._tables.values()])
        ),
        "HillClimb": float(
            np.mean([len(c) for c in hillclimb._measured.values()])
        ),
    }

    fresh = ExhaustiveSearch(apu, seed=9)
    benchmark.pedantic(
        fresh.decide, args=(test[0], 20.0), rounds=1, iterations=1
    )

    lines = ["Model vs search strategies (held-out LU, noisy measurements)"]
    lines.append(
        f"  {'method':<12} {'% under':>8} {'U %perf':>8} {'iters/kernel':>13}"
    )
    for name in ("Model", "Exhaustive", "HillClimb"):
        s = summaries[name]
        lines.append(
            f"  {name:<12} {s.pct_under_limit:8.1f} {s.under_perf_pct:8.1f} "
            f"{cost[name]:13.1f}"
        )
    text = "\n".join(lines)
    write_artifact("search_comparison.txt", text)
    print("\n" + text)

    # The paper's cost claim: 2 iterations vs 42.
    assert cost["Model"] == 2.0
    assert cost["Exhaustive"] == 42.0
    assert cost["HillClimb"] < 42.0

    # Exhaustive is near-oracle in quality (it measured everything).
    assert summaries["Exhaustive"].under_perf_pct > 95.0
    # The model keeps most of that quality at ~5% of the cost.
    assert summaries["Model"].under_perf_pct > (
        summaries["Exhaustive"].under_perf_pct - 20.0
    )
    assert summaries["Model"].pct_under_limit > 80.0
    # Hill climbing does not beat the model on both axes simultaneously.
    hc, mo = summaries["HillClimb"], summaries["Model"]
    assert (
        hc.under_perf_pct <= mo.under_perf_pct + 2.0
        or hc.pct_under_limit <= mo.pct_under_limit + 2.0
    )
