"""Cross-machine transfer: why the offline stage is per-machine.

Paper Section III: "the offline stage is conducted only once to
characterize a new system" — i.e., models are machine-specific.  This
experiment quantifies that: a model trained on the paper's Trinity
calibration is applied, unmodified, to a different part (the ``leaky``
preset: high static power), and compared with a model retrained on that
machine.

Shape assertions:

* native models achieve high cap compliance on their own machines;
* the transplanted model's power predictions degrade by a large factor
  (it learned the wrong machine's power surface);
* retraining on the new machine restores accuracy — the offline stage,
  run once per machine, is necessary and sufficient.

The timed operation is retraining on the new machine.
"""

import numpy as np

from repro.core import CPU_SAMPLE, GPU_SAMPLE, train_model
from repro.hardware.presets import leaky_apu, trinity
from repro.profiling import ProfilingLibrary

from conftest import write_artifact


def _power_mape(model, apu, kernels):
    errs = []
    for k in kernels:
        cm = apu.run(k, CPU_SAMPLE)
        gm = apu.run(k, GPU_SAMPLE)
        pred = model.predict_kernel(cm, gm, kernel_uid=k.uid)
        for cfg, (pw, _) in pred.predictions.items():
            tp = apu.true_total_power_w(k, cfg)
            errs.append(abs(pw - tp) / tp)
    return float(np.mean(errs))


def test_cross_machine_transfer(benchmark, suite):
    machine_a = trinity(seed=0)
    machine_b = leaky_apu(seed=0)
    train = [k for k in suite if k.benchmark != "LU"]
    test = suite.for_benchmark("LU")

    model_a = train_model(ProfilingLibrary(machine_a, seed=0), train)
    model_b = benchmark.pedantic(
        train_model,
        args=(ProfilingLibrary(machine_b, seed=1), train),
        rounds=1,
        iterations=1,
    )

    native_a = _power_mape(model_a, machine_a, test)
    native_b = _power_mape(model_b, machine_b, test)
    transplanted = _power_mape(model_a, machine_b, test)

    text = "\n".join(
        [
            "Cross-machine transfer (power MAPE on held-out LU)",
            f"  trinity model on trinity:   {100 * native_a:5.1f}%",
            f"  leaky model on leaky:       {100 * native_b:5.1f}%",
            f"  trinity model on leaky:     {100 * transplanted:5.1f}%  "
            f"(transplanted, no retraining)",
        ]
    )
    write_artifact("cross_machine.txt", text)
    print("\n" + text)

    # Native models are accurate on their own machines.
    assert native_a < 0.08
    assert native_b < 0.08
    # The transplant degrades noticeably; retraining recovers it.
    assert transplanted > native_b * 1.5
    assert transplanted > 0.05