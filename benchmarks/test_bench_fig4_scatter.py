"""Figure 4: methods in the (cap compliance, performance) plane.

Paper shape being reproduced: "when combined with frequency-limiting,
our model is closest to the oracle when considering both metrics
together.  GPU+FL achieves higher performance, but it meets power
constraints only 60% of the time, whereas our model achieves high
performance while meeting power constraints 88% of the time."

The oracle sits at (100, 100); we assert Model+FL has the smallest
Euclidean distance to that corner.

The timed operation is scatter rendering from the summaries.
"""

import math

from repro.evaluation import render_fig4_scatter, summarize

from conftest import write_artifact


def _distance_to_oracle(s) -> float:
    return math.hypot(100.0 - s.pct_under_limit, 100.0 - s.under_perf_pct)


def test_fig4_compliance_performance_scatter(benchmark, loocv_report):
    summaries = summarize(loocv_report.records)

    text = benchmark(
        render_fig4_scatter, summaries, title="Fig 4: methods vs oracle"
    )
    write_artifact("fig4_scatter.txt", text)
    print("\n" + text)

    s = {x.method: x for x in summaries}

    # Model+FL is nearest the oracle corner among FL-bearing methods and
    # at least ties the raw model.
    d = {name: _distance_to_oracle(x) for name, x in s.items()}
    assert d["Model+FL"] <= d["CPU+FL"]
    assert d["Model+FL"] <= d["GPU+FL"]

    # GPU+FL trades compliance for performance: highest under-limit perf
    # ordering holds loosely (within 5 points of the best).
    best_perf = max(x.under_perf_pct for x in summaries)
    assert s["GPU+FL"].under_perf_pct >= best_perf - 5.0

    # All four methods appear in the rendering.
    for name in ("Model", "Model+FL", "CPU+FL", "GPU+FL"):
        assert name in text
