"""End-to-end hyperparameter sensitivity grid.

A coherent view over the design knobs the individual ablations probe
one at a time: sweep cluster count and ridge regularization through the
full cross-validated Model-only evaluation and verify the headline
metrics are *insensitive* in the paper's operating region — i.e. the
reproduction's conclusions don't hinge on a lucky hyperparameter.

The timed operation is one sweep point (a full Model-only LOOCV).
"""

from repro.evaluation import render_sweep, run_loocv, sweep_hyperparameter

from conftest import write_artifact


def test_hyperparameter_sensitivity(benchmark, suite):
    benchmark.pedantic(
        run_loocv,
        kwargs={"seed": 0, "include_freq_limiting": False},
        rounds=1,
        iterations=1,
    )

    clusters = sweep_hyperparameter("n_clusters", [3, 5, 8], seed=0)
    ridge = sweep_hyperparameter("ridge", [0.0, 0.1, 10.0], seed=0)

    text = "\n\n".join(
        [
            render_sweep(clusters, title="Sensitivity: cluster count"),
            render_sweep(ridge, title="Sensitivity: ridge penalty"),
        ]
    )
    write_artifact("sensitivity.txt", text)
    print("\n" + text)

    # Cluster count is a plateau around the paper's choice: the headline
    # metrics move by only a few points between 3 and 8 clusters.
    unders = [p.pct_under_limit for p in clusters]
    perfs = [p.under_perf_pct for p in clusters]
    assert max(unders) - min(unders) < 8.0
    assert max(perfs) - min(perfs) < 8.0
    assert min(unders) > 80.0 and min(perfs) > 80.0

    # Ridge is NOT a free knob: the power design's coefficients are
    # physically meaningful, so heavy shrinkage biases power predictions
    # and costs cap compliance.  Tiny ridge is harmless; lambda=10 must
    # visibly hurt — the plateau has an edge, and this locates it.
    r = {p.value: p for p in ridge}
    assert r[0.1].pct_under_limit > r[0.0].pct_under_limit - 8.0
    assert r[10.0].pct_under_limit < r[0.0].pct_under_limit - 5.0
