"""Online-overhead benchmark (paper Sections II and IV-C).

The paper claims its system "requires less than one millisecond to make
each configuration selection", with online overheads limited to tree
classification (time proportional to tree depth) and model application
(one matrix-vector product per configuration).  This benchmark times the
complete online decision — tree classification + whole-space prediction
+ scheduler selection — from already-measured sample runs, and asserts
the sub-millisecond claim holds for our implementation too.
"""

from repro.core import CPU_SAMPLE, GPU_SAMPLE, Scheduler

from conftest import train_from_store, write_artifact


def test_online_selection_under_one_millisecond(
    benchmark, exact_apu, suite, char_store
):
    train = [k for k in suite if k.benchmark != "LU"]
    model = train_from_store(char_store, train)
    scheduler = Scheduler()

    kernel = suite.get("LU/Small/LUDecomposition")
    cpu_m = exact_apu.run(kernel, CPU_SAMPLE)
    gpu_m = exact_apu.run(kernel, GPU_SAMPLE)

    def online_decision():
        prediction = model.predict_kernel(cpu_m, gpu_m, kernel_uid=kernel.uid)
        return scheduler.select(prediction, power_cap_w=20.0)

    decision = benchmark(online_decision)
    assert decision.config in exact_apu.config_space

    mean_s = benchmark.stats.stats.mean
    write_artifact(
        "overhead_selection.txt",
        f"Online selection (classify + predict 42 configs + schedule): "
        f"{mean_s * 1e3:.3f} ms mean\nPaper claim: < 1 ms per selection",
    )
    assert mean_s < 1e-3, f"selection took {mean_s * 1e3:.2f} ms (claim: < 1 ms)"
