"""Fleet-scale allocation engine: allocations/s at 1k / 10k / 100k nodes.

The 4-node benchmark (``test_bench_cluster_allocation.py``) checks the
allocation policies on *measured* outcomes; this one checks the
*engine*: the vectorized kernels of :mod:`repro.cluster.allocation`
over synthesized :class:`~repro.cluster.pool.FrontierPool` fleets, at
the scales ROADMAP item 1 calls for.

Measured and written to ``BENCH_cluster.json`` at the repo root:

* warm allocations/s per policy at every scale (the steady state of a
  manager reallocating as the budget moves — pool order caches hot);
* cold allocation time at 100k nodes (view + sorted order rebuilt from
  scratch, the post-membership-change path);
* the pure-Python reference allocators at their feasible scales
  (greedy at 10k, maxmin at 1k — the scan reference is quadratic), and
  the vectorized speedup over them.

Gates: vectorized caps must be bit-identical to the references at 1k
nodes, the 10k greedy speedup must be >= 100x, and a cold 100k greedy
allocation must finish in under a second.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.cluster import (
    FrontierPool,
    allocate_pool,
    greedy_marginal_allocation_reference,
    maxmin_allocation_reference,
)
from repro.telemetry import counter, get_tracer

from conftest import write_artifact

BENCH_PATH = Path(__file__).parent.parent / "BENCH_cluster.json"

SCALES = (1_000, 10_000, 100_000)
POLICIES = ("uniform", "greedy", "maxmin")
BUDGET_FACTOR = 1.35  # of the fleet's summed floors: plenty of steps


def _budget(pool: FrontierPool) -> float:
    return float(np.sum(pool.floors())) * BUDGET_FACTOR


def _warm_rate(pool: FrontierPool, budget: float, policy: str) -> float:
    """Steady-state allocations/s (order caches hot)."""
    allocate_pool(pool, budget, policy)  # prime the caches
    reps = 0
    t0 = time.perf_counter()
    while True:
        allocate_pool(pool, budget, policy)
        reps += 1
        elapsed = time.perf_counter() - t0
        if elapsed > 0.4 or reps >= 300:
            return reps / elapsed


def _cold_time(pool: FrontierPool, budget: float, policy: str) -> float:
    """Best-of-5 allocation time with the view and sorted orders
    rebuilt from scratch (the post-membership-change path)."""
    name = pool.active_names()[0]
    best = float("inf")
    for _ in range(5):
        pool.deactivate([name])
        pool.activate([name])  # bust the view cache, keep membership
        t0 = time.perf_counter()
        allocate_pool(pool, budget, policy)
        best = min(best, time.perf_counter() - t0)
    return best


def test_cluster_allocation_scale(benchmark):
    pools = {n: FrontierPool.synthesize(n, seed=7) for n in SCALES}

    # -- golden equivalence at 1k: vectorized == pure-Python reference.
    pool1k = pools[1_000]
    fr = pool1k.to_frontiers()
    budget1k = _budget(pool1k)
    names = pool1k.active_names()

    t0 = time.perf_counter()
    ref_greedy = greedy_marginal_allocation_reference(budget1k, fr)
    ref_greedy_1k_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    ref_maxmin = maxmin_allocation_reference(budget1k, fr)
    ref_maxmin_1k_s = time.perf_counter() - t0

    vec_greedy = dict(
        zip(names, allocate_pool(pool1k, budget1k, "greedy").tolist())
    )
    vec_maxmin = dict(
        zip(names, allocate_pool(pool1k, budget1k, "maxmin").tolist())
    )
    assert vec_greedy == ref_greedy, "greedy kernel diverged from reference"
    assert vec_maxmin == ref_maxmin, "maxmin kernel diverged from reference"

    # -- reference greedy at 10k (the speedup baseline of the issue).
    pool10k = pools[10_000]
    budget10k = _budget(pool10k)
    t0 = time.perf_counter()
    greedy_marginal_allocation_reference(budget10k, pool10k.to_frontiers())
    ref_greedy_10k_s = time.perf_counter() - t0

    # -- warm allocations/s per scale and policy.
    steps_counter = counter("cluster.alloc.steps_taken")
    steps_before = steps_counter.value
    rates: dict[int, dict[str, float]] = {}
    for n, pool in pools.items():
        b = _budget(pool)
        rates[n] = {p: _warm_rate(pool, b, p) for p in POLICIES}
    assert steps_counter.value > steps_before, "telemetry counters not wired"
    spans = {s["name"] for s in get_tracer().snapshot()}
    assert "cluster/allocate" in spans, sorted(spans)

    # -- cold 100k greedy (full order rebuild) and the headline timed op.
    pool100k = pools[100_000]
    budget100k = _budget(pool100k)
    cold_100k_s = _cold_time(pool100k, budget100k, "greedy")
    benchmark(allocate_pool, pool10k, budget10k, "greedy")

    warm_10k_s = 1.0 / rates[10_000]["greedy"]
    speedup_greedy_10k = ref_greedy_10k_s / warm_10k_s
    speedup_maxmin_1k = ref_maxmin_1k_s * rates[1_000]["maxmin"]

    payload = {
        "experiment": "fleet allocation engine, synthesized pools",
        "budget_factor": BUDGET_FACTOR,
        "allocations_per_s": {
            str(n): {p: round(r, 2) for p, r in by_policy.items()}
            for n, by_policy in rates.items()
        },
        "reference_s": {
            "greedy_1k": round(ref_greedy_1k_s, 4),
            "greedy_10k": round(ref_greedy_10k_s, 4),
            "maxmin_1k": round(ref_maxmin_1k_s, 4),
        },
        "speedup": {
            "greedy_10k": round(speedup_greedy_10k, 1),
            "maxmin_1k": round(speedup_maxmin_1k, 1),
        },
        "cold_greedy_100k_s": round(cold_100k_s, 4),
        "bit_identical_at_1k": True,
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = ["Fleet allocation engine (synthesized frontier pools)"]
    for n in SCALES:
        lines.append(
            f"  {n:>7} nodes: "
            + "  ".join(
                f"{p} {rates[n][p]:10.1f} alloc/s" for p in POLICIES
            )
        )
    lines.append(
        f"  reference: greedy 10k {ref_greedy_10k_s * 1e3:8.1f} ms "
        f"(speedup {speedup_greedy_10k:6.0f}x), "
        f"maxmin 1k {ref_maxmin_1k_s * 1e3:8.1f} ms "
        f"(speedup {speedup_maxmin_1k:6.0f}x)"
    )
    lines.append(f"  cold 100k greedy: {cold_100k_s * 1e3:8.1f} ms")
    text = "\n".join(lines)
    write_artifact("cluster_allocation_scale.txt", text)
    print("\n" + text)

    # Acceptance gates.
    assert speedup_greedy_10k >= 100.0, speedup_greedy_10k
    assert speedup_maxmin_1k >= 100.0, speedup_maxmin_1k
    assert cold_100k_s < 1.0, cold_100k_s
