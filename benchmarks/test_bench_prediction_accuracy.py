"""Prediction-accuracy experiment (the paper's core accuracy claim).

"Our model accurately predicts power and performance" for unseen
kernels (abstract / Section V).  This benchmark cross-validates the
model at benchmark granularity and scores every held-out kernel's
whole-space predictions on:

* magnitude — mean absolute percentage error of power and performance;
* ranking — Kendall correlation between the predicted and true
  configuration orderings (what the scheduler actually consumes).

Shape assertions: power MAPE in the low single digits (the anchored
regression), performance ranking tau above 0.75 on average, and no
kernel with a negative ranking correlation (a catastrophically
misclustered kernel would invert its frontier).

The timed operation is the accuracy scoring of one fold's predictions.
"""

from repro.evaluation import evaluate_prediction_accuracy

from conftest import write_artifact


def test_prediction_accuracy(benchmark, suite):
    report = benchmark.pedantic(
        evaluate_prediction_accuracy,
        kwargs={"seed": 0},
        rounds=1,
        iterations=1,
    )

    text = report.summary()
    worst = max(report.kernels, key=lambda k: k.perf_mape)
    text += (
        f"\n  hardest kernel: {worst.kernel_uid} "
        f"(perf MAPE {100 * worst.perf_mape:.1f}%, cluster {worst.cluster})"
    )
    write_artifact("prediction_accuracy.txt", text)
    print("\n" + text)

    assert len(report.kernels) == 65  # every suite kernel held out once

    # Magnitude accuracy.
    assert report.mean("power_mape") < 0.08
    assert report.mean("perf_mape") < 0.25

    # Ranking accuracy: the scheduler's actual requirement.
    assert report.mean("perf_rank_tau") > 0.75
    assert report.mean("power_rank_tau") > 0.85
    assert report.worst("perf_rank_tau") > 0.0
    assert report.worst("power_rank_tau") > 0.0
