"""Ablation: frontier-dissimilarity composition weight.

The paper compares frontiers by the Kendall correlation of their shared
configurations' orders.  Our dissimilarity blends that order term with a
Jaccard composition term (see ``repro.core.dissimilarity``), because the
pure order term degenerates when frontier *membership* differs — the
very thing that separates CPU-loving from GPU-loving kernels.  This
ablation measures clustering structure (silhouette) and cluster-count
balance at composition weights 0.0 (paper-literal), 0.5 (default), and
1.0 (composition only).

The timed operation is the dissimilarity-matrix construction at the
default weight.
"""

import numpy as np

from repro.core import cluster_kernels, dissimilarity_matrix

from conftest import write_artifact


def test_ablation_composition_weight(benchmark, suite_frontiers):
    D = benchmark(dissimilarity_matrix, suite_frontiers)
    assert D.shape == (len(suite_frontiers), len(suite_frontiers))

    rows = []
    results = {}
    for w in (0.0, 0.25, 0.5, 0.75, 1.0):
        res = cluster_kernels(suite_frontiers, composition_weight=w)
        results[w] = res
        sizes = res.sizes()
        rows.append(
            f"  w={w:4.2f}  silhouette={res.silhouette:+.3f}  "
            f"sizes={sizes}  largest={max(sizes)}/{len(suite_frontiers)}"
        )
    text = "Ablation: composition weight in frontier dissimilarity\n" + "\n".join(
        rows
    )
    write_artifact("ablation_composition.txt", text)
    print("\n" + text)

    # Paper-literal (w=0) degenerates into one giant cluster; the
    # default weight produces balanced, structured clusters.
    deg = max(results[0.0].sizes())
    bal = max(results[0.5].sizes())
    assert bal < deg
    assert bal <= 0.5 * len(suite_frontiers)
    assert results[0.5].silhouette > 0.1
