"""Application-level experiment: whole-program adaptation under caps.

The paper evaluates per-kernel decisions; its profiling library is
explicitly "a foundation for dynamic scheduling" (Section III-D).  This
benchmark runs that foundation end to end: 10 timesteps of CoMD Small
under a mid-run cap drop (28 W -> 16 W), comparing the adaptive runtime
against static-configuration baselines and the oracle.

Shape assertions:

* the adaptive runtime completes within 25% of oracle wall time;
* it beats the low-power static CPU baseline on time and the high-power
  static baseline on cap compliance (the static max-power run violates
  essentially always once the cap drops);
* after the cap drops, the adaptive runtime's scheduled kernels move off
  the GPU (the device whose power floor exceeds the new cap).

The timed operation is one adaptive timestep (all kernels, scheduled
phase).
"""

from repro.hardware import Configuration
from repro.profiling import ProfilingLibrary
from repro.runtime import AdaptiveRuntime, Application, OracleRuntime, StaticRuntime

from conftest import train_from_store, write_artifact

TIMESTEPS = 10


def _caps(t: int) -> float:
    return 28.0 if t < TIMESTEPS // 2 else 16.0


def test_application_level_adaptation(benchmark, exact_apu, suite, char_store):
    app = Application.from_suite(suite, "CoMD Small")
    model = train_from_store(
        char_store, [k for k in suite if k.benchmark != "CoMD"]
    )

    adaptive_rt = AdaptiveRuntime(model, ProfilingLibrary(exact_apu, seed=1))
    adaptive = adaptive_rt.run(app, TIMESTEPS, _caps)
    static_hot = StaticRuntime(
        ProfilingLibrary(exact_apu, seed=2), Configuration.cpu(3.7, 4)
    ).run(app, TIMESTEPS, _caps)
    static_cold = StaticRuntime(
        ProfilingLibrary(exact_apu, seed=3), Configuration.cpu(1.4, 4)
    ).run(app, TIMESTEPS, _caps)
    oracle = OracleRuntime(ProfilingLibrary(exact_apu, seed=4)).run(
        app, TIMESTEPS, _caps
    )

    # Timed: one steady-state adaptive timestep (predictions all cached).
    benchmark(
        lambda: [adaptive_rt._invoke(k, TIMESTEPS, 16.0) for k in app.kernels]
    )

    lines = ["Application runtime: CoMD Small, cap 28W -> 16W"]
    for name, tr in (
        ("adaptive", adaptive),
        ("static 3.7x4", static_hot),
        ("static 1.4x4", static_cold),
        ("oracle", oracle),
    ):
        lines.append(
            f"  {name:<13} time {tr.total_time_s:7.2f}s  "
            f"energy {tr.total_energy_j:6.0f}J  "
            f"over-cap {100 * tr.violation_rate:5.1f}%"
        )
    text = "\n".join(lines)
    write_artifact("application_runtime.txt", text)
    print("\n" + text)

    # Near-oracle wall time.
    assert adaptive.total_time_s <= oracle.total_time_s * 1.25
    # Faster than the cap-safe static baseline.
    assert adaptive.total_time_s < static_cold.total_time_s
    # Far better compliance than the max-power static baseline.
    assert adaptive.violation_rate < static_hot.violation_rate - 0.3

    # Scheduled kernels abandon the GPU once the cap drops below its floor.
    low_cap_scheduled = [
        e
        for e in adaptive.executions
        if e.phase == "scheduled" and e.power_cap_w == 16.0
    ]
    assert low_cap_scheduled
    assert all(not e.config.is_gpu for e in low_cap_scheduled)
