"""Hybrid-execution analysis (paper Section III-A's exclusion argument).

The paper excludes hybrid CPU+GPU execution, arguing that even in the
best case it "will strictly lower power-efficiency compared to the best
single device", so "the benefit of hybrid execution in a
power-constrained environment is often much lower than the best case."

This experiment evaluates an *optimistic* hybrid model (perfect load
balance) across the suite and tests the argument:

* unconstrained, ideal hybrid beats the best single device (sanity:
  hybrid is genuinely attractive without power limits — this is why
  systems like Qilin exist);
* in energy efficiency (performance per watt), the best single device
  beats ideal hybrid for the overwhelming majority of kernels;
* under power caps spanning the single-device frontier, the best
  single-device configuration matches or beats ideal hybrid almost
  everywhere, and hybrid cannot reach low caps at all (both devices
  powered);
* with a realistic efficiency factor (0.8), hybrid loses even more
  ground.

The timed operation is one whole-space hybrid sweep for one kernel.
"""

import numpy as np

from repro.core import ParetoFrontier
from repro.hardware.hybrid import (
    best_hybrid_under_cap,
    enumerate_hybrid_points,
    hybrid_execution,
)
from repro.hardware import pstates

from conftest import write_artifact


def _single_device_frontier(exact_apu, kernel):
    return ParetoFrontier.from_measurements(exact_apu.run_all_configs(kernel))


def test_hybrid_exclusion_argument(benchmark, exact_apu, suite):
    k0 = suite.get("LULESH/Large/CalcFBHourglassForce")
    benchmark(
        lambda: [
            hybrid_execution(k0.characteristics, f, n, g)
            for f in pstates.CPU_FREQS_GHZ
            for n in range(1, 5)
            for g in pstates.GPU_FREQS_GHZ
        ]
    )

    kernels = list(suite)
    hybrid_wins_unconstrained = 0
    single_wins_efficiency = 0
    capped_single_wins = {1.0: 0, 0.8: 0}
    capped_total = 0
    hybrid_infeasible_low_cap = 0

    for k in kernels:
        frontier = _single_device_frontier(exact_apu, k)
        best_single_perf = frontier.max_performance

        # The hybrid point set is cap-independent: enumerate it once per
        # efficiency and reuse across every cap below.
        points = {
            eff: enumerate_hybrid_points(k.characteristics, efficiency=eff)
            for eff in (1.0, 0.8)
        }

        # Unconstrained ideal hybrid.
        best_hybrid = best_hybrid_under_cap(
            k.characteristics, float("inf"), points=points[1.0]
        )
        if best_hybrid.performance > best_single_perf:
            hybrid_wins_unconstrained += 1

        # Energy efficiency (perf per watt) at each side's best point.
        single_eff = max(p.performance / p.power_w for p in frontier)
        hybrid_eff = best_hybrid.performance / best_hybrid.power_w
        if single_eff >= hybrid_eff:
            single_wins_efficiency += 1

        # Power-capped comparison at the kernel's frontier caps, for the
        # ideal hybrid and for one with realistic overlap efficiency.
        for cap in [p.power_w for p in frontier]:
            capped_total += 1
            single = frontier.best_under_cap(cap)
            for eff in (1.0, 0.8):
                hybrid = best_hybrid_under_cap(
                    k.characteristics, cap, efficiency=eff, points=points[eff]
                )
                if hybrid is None:
                    capped_single_wins[eff] += 1
                    if eff == 1.0:
                        hybrid_infeasible_low_cap += 1
                elif single.performance >= hybrid.performance:
                    capped_single_wins[eff] += 1

    n = len(kernels)
    text = "\n".join(
        [
            "Hybrid-execution analysis (perfectly load-balanced hybrid)",
            f"  unconstrained: ideal hybrid beats best single device on "
            f"{hybrid_wins_unconstrained}/{n} kernels "
            f"(why hybrid runtimes exist)",
            f"  energy efficiency: best single device wins on "
            f"{single_wins_efficiency}/{n} kernels "
            f"(the paper's 'strictly lower power-efficiency')",
            f"  under frontier caps, vs IDEAL hybrid: single device "
            f"matches/beats it in {capped_single_wins[1.0]}/{capped_total} "
            f"cases ({hybrid_infeasible_low_cap} infeasible for hybrid)",
            f"  under frontier caps, vs 80%-efficient hybrid: "
            f"{capped_single_wins[0.8]}/{capped_total}",
        ]
    )
    write_artifact("hybrid_analysis.txt", text)
    print("\n" + text)

    # Sanity: without power limits, ideal hybrid is genuinely attractive.
    assert hybrid_wins_unconstrained > 0.5 * n
    # The paper's efficiency claim: hybrid strictly lowers power
    # efficiency for nearly all kernels.
    assert single_wins_efficiency > 0.85 * n
    # Under caps, even the IDEAL hybrid loses or is infeasible in most
    # cases; with realistic overlap efficiency the single device wins
    # the large majority — the paper's exclusion argument.
    assert capped_single_wins[1.0] > 0.5 * capped_total
    assert capped_single_wins[0.8] > 0.65 * capped_total
    assert hybrid_infeasible_low_cap > 0.3 * capped_total
