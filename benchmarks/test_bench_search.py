"""Search-based frontier discovery: exact-match gates and scaling.

Two regimes, written to ``BENCH_search.json`` at the repo root:

* **Paper space** (144 genomes, 42 canonical points, enumerable): the
  NSGA-II engine at its tuned settings must reproduce the exhaustively
  enumerated frontier — hypervolume ratio >= 0.99 and per-cap rate
  regret <= 1% on every gated kernel — and be bit-identical per seed.
* **Demo space** (1,179,648 points, enumeration gated): the engine must
  reach the hypervolume a 20k-evaluation random-sampling baseline
  attains using at most **1/10** of its budget.  This is the subsystem's
  reason to exist: frontier quality at a fraction of the evaluations,
  on a space nothing upstream could enumerate.

Also recorded: bulk evaluation throughput (genomes/s through the
vectorized batch models — the quantity that turns "1M points" from a
wall into a budget) and the evaluation cost of full enumeration for
contrast.

The timed operation is one tuned paper-space search.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.search import (
    SearchConfig,
    SpaceTooLargeError,
    demo_space,
    nsga2_search,
    paper_space,
    random_search,
    validate_against_exact,
)
from repro.telemetry import counter, get_tracer

from conftest import write_artifact

BENCH_PATH = Path(__file__).parent.parent / "BENCH_search.json"

#: Tuned settings (see tests/test_search_integration.py): exact-match
#: quality on the paper space at ~1.2k evaluations.
PAPER_SEARCH = SearchConfig(population=48, generations=25, epsilon=0.0)

GATE_HV_RATIO = 0.99
GATE_MAX_REGRET = 0.01
GATE_KERNELS = 10  # paper-space kernels gated per run

RANDOM_BUDGET = 20_000
NSGA_DEMO = SearchConfig(population=100, generations=199, seed=3, epsilon=1e-4, max_evaluations=RANDOM_BUDGET)
BUDGET_RATIO_GATE = 10  # search must match random with <= budget/10 evals


def test_search_frontier_discovery(benchmark, suite):
    kernels = list(suite)[:GATE_KERNELS]
    sp = paper_space()
    dm = demo_space()

    # -- paper space: exact-match gates across the gated kernels.
    evals_counter = counter("search.evaluations")
    evals_before = evals_counter.value
    per_kernel = {}
    worst_hv, worst_regret = 1.0, 0.0
    for k in kernels:
        res = nsga2_search(sp, k, PAPER_SEARCH)
        report = validate_against_exact(sp, k, res.archive)
        per_kernel[k.uid] = {
            "hypervolume_ratio": round(report.hypervolume_ratio, 6),
            "max_cap_regret": round(report.max_cap_regret, 6),
            "evaluations": res.evaluations,
            "archive_points": report.archive_points,
            "exact_points": report.exact_points,
        }
        worst_hv = min(worst_hv, report.hypervolume_ratio)
        worst_regret = max(worst_regret, report.max_cap_regret)
        assert report.meets(
            min_hv_ratio=GATE_HV_RATIO, max_regret=GATE_MAX_REGRET
        ), (k.uid, report)
    assert evals_counter.value > evals_before, "telemetry counters not wired"
    spans = {s["name"] for s in get_tracer().snapshot()}
    assert "search/run" in spans, sorted(spans)

    # -- determinism: same seed, bit-identical archive.
    k0 = kernels[0]
    a = nsga2_search(sp, k0, PAPER_SEARCH).archive
    b = nsga2_search(sp, k0, PAPER_SEARCH).archive
    assert np.array_equal(a.genomes, b.genomes)
    assert np.array_equal(a.powers, b.powers)
    assert np.array_equal(a.performances, b.performances)

    # -- demo space: enumeration is gated; search beats the baseline's
    # evaluation budget by >= the gate factor.
    with pytest.raises(SpaceTooLargeError):
        dm.all_genomes()

    rnd = random_search(dm, k0, RANDOM_BUDGET, seed=NSGA_DEMO.seed)
    nsga = nsga2_search(
        dm, k0, NSGA_DEMO, hypervolume_ref_w=rnd.hypervolume_ref_w
    )
    evals_to_match = next(
        (e for e, hv in nsga.history if hv >= rnd.hypervolume), None
    )
    assert evals_to_match is not None, (
        f"search never reached the random baseline's hypervolume "
        f"({nsga.hypervolume:.4f} < {rnd.hypervolume:.4f})"
    )
    assert evals_to_match <= RANDOM_BUDGET // BUDGET_RATIO_GATE, (
        f"search needed {evals_to_match} evaluations to match a "
        f"{RANDOM_BUDGET}-evaluation random baseline "
        f"(gate: {RANDOM_BUDGET // BUDGET_RATIO_GATE})"
    )

    # -- bulk evaluation throughput on the demo space.
    g = dm.sample_genomes(np.random.default_rng(0), 200_000)
    t0 = time.perf_counter()
    dm.evaluate(k0, g)
    bulk_s = time.perf_counter() - t0
    bulk_rate = len(g) / bulk_s

    # -- enumeration contrast: evaluating *every* demo-space point at
    # the measured bulk rate vs what the search actually spent.
    enumeration_cost_s = dm.size / bulk_rate
    search_rate = nsga.evaluations / max(nsga.elapsed_s, 1e-9)

    # -- the headline timed op: one tuned paper-space search.
    benchmark(nsga2_search, sp, k0, PAPER_SEARCH)

    payload = {
        "experiment": "search-based Pareto frontier discovery",
        "paper_space": {
            "size": sp.size,
            "config": {
                "population": PAPER_SEARCH.population,
                "generations": PAPER_SEARCH.generations,
                "epsilon": PAPER_SEARCH.epsilon,
            },
            "kernels_gated": len(kernels),
            "worst_hypervolume_ratio": round(worst_hv, 6),
            "worst_max_cap_regret": round(worst_regret, 6),
            "bit_identical_per_seed": True,
            "per_kernel": per_kernel,
        },
        "demo_space": {
            "size": dm.size,
            "enumeration_gated": True,
            "random_budget": RANDOM_BUDGET,
            "random_hypervolume": round(rnd.hypervolume, 6),
            "search_evals_to_match": evals_to_match,
            "budget_ratio": round(RANDOM_BUDGET / evals_to_match, 1),
            "budget_ratio_gate": BUDGET_RATIO_GATE,
            "search_evaluations_per_s": round(search_rate, 0),
            "bulk_evaluations_per_s": round(bulk_rate, 0),
            "full_enumeration_cost_s": round(enumeration_cost_s, 2),
        },
    }
    BENCH_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = ["Search-based frontier discovery"]
    lines.append(
        f"  paper space ({sp.size} pts, {len(kernels)} kernels): "
        f"worst hv ratio {worst_hv:.6f}, worst cap regret "
        f"{worst_regret:.4%} (gates: >= {GATE_HV_RATIO}, "
        f"<= {GATE_MAX_REGRET:.0%})"
    )
    lines.append(
        f"  demo space ({dm.size} pts, enumeration gated): matched a "
        f"{RANDOM_BUDGET}-eval random baseline after {evals_to_match} "
        f"evals ({RANDOM_BUDGET / evals_to_match:.0f}x fewer; "
        f"gate {BUDGET_RATIO_GATE}x)"
    )
    lines.append(
        f"  throughput: {bulk_rate:,.0f} bulk eval/s, "
        f"{search_rate:,.0f} eval/s inside search; enumerating all "
        f"{dm.size} points would cost ~{enumeration_cost_s:.1f}s of "
        f"evaluation alone"
    )
    write_artifact("search_discovery.txt", "\n".join(lines))
