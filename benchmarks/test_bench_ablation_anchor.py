"""Ablation: the sample-power anchor in the power regression.

The paper's power model is ``P_power = b0 + b1 x1 + ... + bn xn`` over
configuration variables.  Our implementation additionally feeds the
kernel's measured sample-configuration power (information the two
sample iterations already provide) into the regression, plus its
first-order interactions — see ``repro.core.regression``.  This
ablation quantifies that choice: without the anchor, one cluster-level
power model must serve kernels whose absolute power differs by tens of
watts (the paper reports a 19-55 W spread), and held-out power error
grows accordingly.

The timed operation is offline training without the anchor.
"""

import numpy as np

from repro.core import CPU_SAMPLE, GPU_SAMPLE, AdaptiveModel

from conftest import write_artifact


def test_ablation_power_anchor(benchmark, exact_apu, suite, char_store):
    train = [k for k in suite if k.benchmark != "SMC"]
    chars = char_store.characterize(train)
    test = suite.for_benchmark("SMC")
    samples = {
        k.uid: (exact_apu.run(k, CPU_SAMPLE), exact_apu.run(k, GPU_SAMPLE))
        for k in test
    }

    dissim = char_store.dissimilarity_submatrix(train)
    model_plain = benchmark(
        lambda: AdaptiveModel.train(chars, power_anchor=False, dissimilarity=dissim)
    )
    model_anchored = AdaptiveModel.train(chars, power_anchor=True, dissimilarity=dissim)

    def power_error(model):
        errs = []
        for k in test:
            cm, gm = samples[k.uid]
            pred = model.predict_kernel(cm, gm)
            for cfg, (pw, _) in pred.predictions.items():
                tp = exact_apu.true_total_power_w(k, cfg)
                errs.append(abs(pw - tp) / tp)
        return float(np.mean(errs))

    err_plain = power_error(model_plain)
    err_anchored = power_error(model_anchored)

    text = (
        "Ablation: sample-power anchor in the power regression "
        "(held-out SMC)\n"
        f"  without anchor (paper-literal): power err {err_plain:.4f}\n"
        f"  with anchor (+interactions):    power err {err_anchored:.4f}\n"
        f"  improvement: {err_plain / max(err_anchored, 1e-9):.1f}x"
    )
    write_artifact("ablation_anchor.txt", text)
    print("\n" + text)

    # The anchor must help substantially on a power-diverse benchmark.
    assert err_anchored < err_plain
    assert err_anchored < 0.10
    # And the paper-literal variant still produces a sane model.
    assert err_plain < 0.60
