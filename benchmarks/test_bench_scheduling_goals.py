"""Scheduling-goal experiment (paper Section III-C).

"The predicted values could be used to select configurations for energy
efficiency, energy-delay product, or any other scheduling goal."  This
benchmark exercises all three goals over the held-out SMC kernels at a
generous cap and verifies their defining trade-offs:

* each goal exactly optimizes its own objective on the *predicted*
  surface (the scheduler's hard guarantee, independent of model error);
* on *ground truth*, the performance goal achieves the highest true
  performance, and the energy goal's true energy stays within the
  model's prediction-error band of the performance goal's (held-out
  energy ranking across the CPU/GPU divide rests on ~4 % power and
  ~10 % performance MAPE, so strict ground-truth ordering is not a
  stable property — see docs/EVALUATION_PIPELINE.md on determinism vs
  draw sensitivity);
* all three respect the cap.

The timed operation is one energy-goal selection.
"""

import numpy as np

from repro.core import CPU_SAMPLE, GPU_SAMPLE, Scheduler

from conftest import train_from_store, write_artifact

CAP_W = 35.0


def test_scheduling_goals(benchmark, exact_apu, suite, char_store):
    model = train_from_store(
        char_store, [k for k in suite if k.benchmark != "SMC"]
    )
    test = suite.for_benchmark("SMC")

    preds = {}
    for k in test:
        cm = exact_apu.run(k, CPU_SAMPLE)
        gm = exact_apu.run(k, GPU_SAMPLE)
        preds[k.uid] = model.predict_kernel(cm, gm, kernel_uid=k.uid)

    benchmark(Scheduler("energy").select, preds[test[0].uid], CAP_W)

    outcomes = {}
    for goal in ("performance", "energy", "edp"):
        sched = Scheduler(goal)
        perfs, energies, powers = [], [], []
        for k in test:
            cfg = sched.select(preds[k.uid], CAP_W).config
            t = exact_apu.true_time_s(k, cfg)
            p = exact_apu.true_total_power_w(k, cfg)
            perfs.append(1.0 / t)
            energies.append(p * t)
            powers.append(p)
        outcomes[goal] = {
            "perf": float(np.mean(perfs)),
            "energy": float(np.mean(energies)),
            "max_power": float(np.max(powers)),
        }

    lines = [f"Scheduling goals at a {CAP_W:.0f} W cap (held-out SMC)"]
    for goal, o in outcomes.items():
        lines.append(
            f"  {goal:<12} perf {o['perf']:7.3f} inv/s  "
            f"energy {o['energy']:6.2f} J/inv  "
            f"max power {o['max_power']:5.1f} W"
        )
    text = "\n".join(lines)
    write_artifact("scheduling_goals.txt", text)
    print("\n" + text)

    # The scheduler's hard guarantee: each goal optimizes its own
    # objective on the predicted surface, per kernel.
    for k in test:
        chosen = {
            goal: Scheduler(goal).select(preds[k.uid], CAP_W)
            for goal in ("performance", "energy", "edp")
        }

        def pred_energy(d):
            return d.predicted_power_w / d.predicted_performance

        assert (
            chosen["performance"].predicted_performance
            >= chosen["energy"].predicted_performance - 1e-9
        )
        assert pred_energy(chosen["energy"]) <= pred_energy(
            chosen["performance"]
        ) + 1e-9
        assert pred_energy(chosen["energy"]) <= pred_energy(
            chosen["edp"]
        ) + 1e-9

        def pred_edp(d):
            return pred_energy(d) / d.predicted_performance

        assert pred_edp(chosen["edp"]) <= pred_edp(chosen["energy"]) + 1e-9
        assert pred_edp(chosen["edp"]) <= pred_edp(chosen["performance"]) + 1e-9

    # Ground-truth trade-offs, within the model's prediction-error band.
    assert outcomes["performance"]["perf"] >= outcomes["energy"]["perf"]
    assert (
        outcomes["energy"]["energy"]
        <= outcomes["performance"]["energy"] * 1.15
    )
    # Every goal respects the cap (predictions are accurate enough here).
    for o in outcomes.values():
        assert o["max_power"] <= CAP_W * 1.05
    # The goals genuinely differ.
    assert outcomes["energy"]["perf"] < outcomes["performance"]["perf"]
