"""Scheduling-goal experiment (paper Section III-C).

"The predicted values could be used to select configurations for energy
efficiency, energy-delay product, or any other scheduling goal."  This
benchmark exercises all three goals over the held-out LU kernels at a
generous cap and verifies their defining trade-offs on *ground truth*:

* the energy goal consumes the least true energy per invocation;
* the performance goal achieves the highest true performance;
* EDP lands between the two on both axes (weakly);
* all three respect the cap.

The timed operation is one energy-goal selection.
"""

import numpy as np

from repro.core import CPU_SAMPLE, GPU_SAMPLE, Scheduler, train_model
from repro.profiling import ProfilingLibrary

from conftest import write_artifact

CAP_W = 35.0


def test_scheduling_goals(benchmark, exact_apu, suite):
    library = ProfilingLibrary(exact_apu, seed=0)
    model = train_model(library, [k for k in suite if k.benchmark != "SMC"])
    test = suite.for_benchmark("SMC")

    preds = {}
    for k in test:
        cm = exact_apu.run(k, CPU_SAMPLE)
        gm = exact_apu.run(k, GPU_SAMPLE)
        preds[k.uid] = model.predict_kernel(cm, gm, kernel_uid=k.uid)

    benchmark(Scheduler("energy").select, preds[test[0].uid], CAP_W)

    outcomes = {}
    for goal in ("performance", "energy", "edp"):
        sched = Scheduler(goal)
        perfs, energies, powers = [], [], []
        for k in test:
            cfg = sched.select(preds[k.uid], CAP_W).config
            t = exact_apu.true_time_s(k, cfg)
            p = exact_apu.true_total_power_w(k, cfg)
            perfs.append(1.0 / t)
            energies.append(p * t)
            powers.append(p)
        outcomes[goal] = {
            "perf": float(np.mean(perfs)),
            "energy": float(np.mean(energies)),
            "max_power": float(np.max(powers)),
        }

    lines = [f"Scheduling goals at a {CAP_W:.0f} W cap (held-out SMC)"]
    for goal, o in outcomes.items():
        lines.append(
            f"  {goal:<12} perf {o['perf']:7.3f} inv/s  "
            f"energy {o['energy']:6.2f} J/inv  "
            f"max power {o['max_power']:5.1f} W"
        )
    text = "\n".join(lines)
    write_artifact("scheduling_goals.txt", text)
    print("\n" + text)

    # Defining trade-offs (measured on ground truth).
    assert outcomes["energy"]["energy"] <= outcomes["performance"]["energy"]
    assert outcomes["performance"]["perf"] >= outcomes["energy"]["perf"]
    assert (
        outcomes["energy"]["energy"] - 1e-9
        <= outcomes["edp"]["energy"]
        <= outcomes["performance"]["energy"] + 1e-9
    )
    # Every goal respects the cap (predictions are accurate enough here).
    for o in outcomes.values():
        assert o["max_power"] <= CAP_W * 1.05
    # The goals genuinely differ.
    assert outcomes["energy"]["perf"] < outcomes["performance"]["perf"]
