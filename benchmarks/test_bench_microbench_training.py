"""Microbenchmark-trained model vs application-trained model.

Paper Section III-B: "the training set could be composed of
microbenchmarks or a standard benchmark suite."  This experiment trains
one model on a 54-point synthetic microbenchmark grid — so *no
application kernel is ever seen during training* — and evaluates its
configuration selections on the entire 65-combo application suite,
against a per-fold LOOCV-trained model and the oracle.

Shape assertion: the microbenchmark-trained model retains most of the
LOOCV model's quality (>= 80% of oracle performance in under-limit
cases, cap compliance within 15 points of the LOOCV model), supporting
the paper's claim that the offline stage characterizes the *machine*,
not the applications.

The timed operation is training on the microbenchmark grid.
"""

from repro.core import train_model
from repro.evaluation import evaluate_suite, run_loocv, summarize
from repro.methods import ModelMethod, Oracle
from repro.profiling import ProfilingLibrary
from repro.workloads import microbenchmark_suite

from conftest import write_artifact


def test_microbenchmark_training(benchmark, exact_apu, suite, loocv_report):
    micro = microbenchmark_suite()
    assert len(micro) == 54

    library = ProfilingLibrary(exact_apu, seed=0)
    model = benchmark.pedantic(
        train_model, args=(library, micro), rounds=1, iterations=1
    )

    oracle = Oracle(exact_apu)
    online = ProfilingLibrary(exact_apu, seed=50)
    method = ModelMethod(model, online)
    method.name = "Model(micro)"
    records = evaluate_suite(exact_apu, oracle, [method], list(suite))
    (micro_summary,) = summarize(records)

    loocv_model = next(
        s for s in summarize(loocv_report.records) if s.method == "Model"
    )

    text = "\n".join(
        [
            "Microbenchmark-trained model vs LOOCV-trained model (full suite)",
            f"  {'training set':<22} {'% under':>8} {'U %perf':>8}",
            f"  {'54 microbenchmarks':<22} "
            f"{micro_summary.pct_under_limit:8.1f} "
            f"{micro_summary.under_perf_pct:8.1f}",
            f"  {'LOOCV applications':<22} "
            f"{loocv_model.pct_under_limit:8.1f} "
            f"{loocv_model.under_perf_pct:8.1f}",
        ]
    )
    write_artifact("microbench_training.txt", text)
    print("\n" + text)

    # The machine characterization transfers from microbenchmarks to
    # applications.
    assert micro_summary.under_perf_pct > 80.0
    assert (
        micro_summary.pct_under_limit
        > loocv_model.pct_under_limit - 15.0
    )
