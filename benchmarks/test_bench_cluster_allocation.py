"""Cluster-level experiment: budget allocation from predicted frontiers.

The paper's introduction motivates the node-level model as "a key
ingredient to maximizing performance on a multi-node cluster" under a
system-wide budget.  This benchmark builds a heterogeneous 4-node
cluster (different applications per node) under a 72 W global budget —
tight enough that uniform splitting strands some nodes below useful
operating points — and compares the three allocation policies on
*measured* outcomes:

* greedy (throughput objective) must beat uniform on aggregate
  timestep rate;
* maxmin (makespan objective) must beat uniform on cluster wall time;
* all policies must keep realized cluster power within the budget in
  (almost) every epoch.

The timed operation is one greedy allocation from cached frontiers
(the decision a cluster manager makes each time the budget moves).
"""

from repro.cluster import ClusterNode, ClusterPowerManager
from repro.runtime import Application

from conftest import train_from_store, write_artifact

BUDGET_W = 72.0
EPOCHS = 2
TIMESTEPS = 3
GROUPS = ["LU Small", "LU Large", "CoMD Small", "SMC Ref"]


def test_cluster_budget_allocation(benchmark, exact_apu, suite, char_store):
    model = train_from_store(char_store, suite.for_benchmark("LULESH"))

    def build_nodes():
        return [
            ClusterNode(
                f"node{i}",
                Application.from_suite(suite, g),
                model,
                seed=20 + i,
            )
            for i, g in enumerate(GROUPS)
        ]

    reports = {}
    managers = {}
    for policy in ("uniform", "greedy", "maxmin"):
        mgr = ClusterPowerManager(build_nodes(), policy=policy)
        reports[policy] = mgr.run(
            [BUDGET_W] * EPOCHS, n_epochs=EPOCHS, timesteps_per_epoch=TIMESTEPS
        )
        managers[policy] = mgr

    # Timed: one reallocation decision from cached frontiers.
    greedy_mgr = managers["greedy"]
    benchmark(greedy_mgr.allocate, BUDGET_W)

    lines = [f"Cluster allocation at {BUDGET_W:.0f} W over {len(GROUPS)} nodes"]
    for policy, rep in reports.items():
        lines.append(
            f"  {policy:<8} throughput {rep.mean_aggregate_rate:7.3f} ts/s  "
            f"makespan {rep.total_time_s:7.2f} s  "
            f"compliance {100 * rep.budget_compliance():5.1f}%"
        )
    text = "\n".join(lines)
    write_artifact("cluster_allocation.txt", text)
    print("\n" + text)

    # Throughput: greedy > uniform by a clear margin.
    assert (
        reports["greedy"].mean_aggregate_rate
        > reports["uniform"].mean_aggregate_rate * 1.3
    )
    # Makespan: maxmin < uniform.
    assert reports["maxmin"].total_time_s < reports["uniform"].total_time_s
    # Budget compliance for the frontier-aware policies.
    assert reports["greedy"].budget_compliance() >= 0.5
    assert reports["maxmin"].budget_compliance() >= 0.5
