"""Statistical stability: Table III across random seeds.

The paper reports point estimates from one hardware campaign.  Our
simulated reproduction can do better: re-run the entire cross-validated
evaluation under several measurement-noise seeds and verify that the
headline conclusions are not artifacts of one draw.

Shape assertions (must hold for *every* seed):

* Model+FL has the highest cap compliance;
* GPU+FL has the lowest cap compliance;
* CPU+FL has the lowest under-limit performance;

and the spread of each headline number across seeds stays small
(< 6 percentage points), showing the simulated evaluation is stable.

The timed operation is one full LOOCV evaluation.
"""

import numpy as np

from repro.evaluation import run_loocv, summarize

from conftest import write_artifact

SEEDS = (0, 1, 2)


def test_seed_stability(benchmark, loocv_report):
    # Seed 0 comes from the session fixture; time one fresh run.
    fresh = benchmark.pedantic(
        run_loocv, kwargs={"seed": SEEDS[1]}, rounds=1, iterations=1
    )
    reports = {
        SEEDS[0]: loocv_report,
        SEEDS[1]: fresh,
        SEEDS[2]: run_loocv(seed=SEEDS[2]),
    }

    per_seed = {}
    for seed, rep in reports.items():
        per_seed[seed] = {s.method: s for s in summarize(rep.records)}

    lines = ["Table III headline columns across seeds"]
    for method in ("Model", "Model+FL", "GPU+FL", "CPU+FL"):
        unders = [per_seed[s][method].pct_under_limit for s in SEEDS]
        perfs = [per_seed[s][method].under_perf_pct for s in SEEDS]
        lines.append(
            f"  {method:<10} under {np.mean(unders):5.1f} +- "
            f"{np.std(unders):4.2f}   U-perf {np.mean(perfs):5.1f} +- "
            f"{np.std(perfs):4.2f}"
        )
    text = "\n".join(lines)
    write_artifact("seed_stability.txt", text)
    print("\n" + text)

    for seed in SEEDS:
        s = per_seed[seed]
        best_under = max(x.pct_under_limit for x in s.values())
        worst_under = min(x.pct_under_limit for x in s.values())
        assert s["Model+FL"].pct_under_limit == best_under
        assert s["GPU+FL"].pct_under_limit == worst_under
        assert s["CPU+FL"].under_perf_pct == min(
            x.under_perf_pct for x in s.values()
        )

    # Small spread across seeds for every headline number.
    for method in ("Model", "Model+FL", "GPU+FL", "CPU+FL"):
        for field in ("pct_under_limit", "under_perf_pct"):
            vals = [getattr(per_seed[s][method], field) for s in SEEDS]
            assert max(vals) - min(vals) < 6.0
